"""Tests for the virtual-nodes load-balancing baseline."""

from __future__ import annotations

import math
import random
import statistics

import pytest

from repro.analysis.stats import max_min_ratio
from repro.baselines.virtual_nodes import (
    VirtualNodeRing,
    maintenance_messages_per_round,
)


class TestVirtualNodeRing:
    def test_validation(self, rng):
        with pytest.raises(ValueError):
            VirtualNodeRing.random(0, 4, rng)
        with pytest.raises(ValueError):
            VirtualNodeRing.random(4, 0, rng)

    def test_sizes(self, rng):
        ring = VirtualNodeRing.random(10, 4, rng)
        assert len(ring.circle) == 40
        assert len(ring.owner) == 40
        assert ring.n_peers == 10
        assert ring.v == 4

    def test_each_peer_owns_v_points(self, rng):
        ring = VirtualNodeRing.random(12, 5, rng)
        counts = {p: 0 for p in range(12)}
        for owner in ring.owner:
            counts[owner] += 1
        assert all(c == 5 for c in counts.values())

    def test_probabilities_normalized(self, rng):
        ring = VirtualNodeRing.random(20, 8, rng)
        probs = ring.selection_probabilities()
        assert math.fsum(probs) == pytest.approx(1.0)
        assert all(p >= 0 for p in probs)

    def test_more_virtual_nodes_balance_better(self):
        """The related-work claim: v = Theta(log n) smooths the shares."""
        n = 200
        medians = {}
        for v in (1, 8):
            ratios = [
                max_min_ratio(
                    VirtualNodeRing.random(n, v, random.Random(seed))
                    .selection_probabilities()
                )
                for seed in range(15)
            ]
            medians[v] = statistics.median(ratios)
        assert medians[8] < medians[1] / 3.0

    def test_max_share_shrinks_with_v(self):
        n = 200
        shares = {
            v: statistics.median(
                VirtualNodeRing.random(n, v, random.Random(seed)).max_share()
                for seed in range(15)
            )
            for v in (1, 8)
        }
        assert shares[8] < shares[1]


class TestMaintenanceCost:
    def test_validation(self):
        with pytest.raises(ValueError):
            maintenance_messages_per_round(0, 1)

    def test_scales_linearly_in_v(self):
        base = maintenance_messages_per_round(100, 1)
        heavy = maintenance_messages_per_round(100, 8)
        assert heavy > 7 * base  # ~8x points, mildly superlinear log factor

    def test_paper_tradeoff_visible(self):
        """v = log n improves balance but multiplies maintenance ~log n."""
        n = 1024
        v = int(math.log2(n))
        assert maintenance_messages_per_round(n, v) > 9 * maintenance_messages_per_round(n, 1)
