"""Tests for the unstructured overlay generators (open problem 2)."""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.analysis.spectra import spectral_report
from repro.baselines.unstructured import OVERLAY_KINDS, make_overlay


class TestMakeOverlay:
    def test_rejects_unknown_kind(self, rng):
        with pytest.raises(ValueError):
            make_overlay("hypercube", 50, rng)

    def test_rejects_tiny(self, rng):
        with pytest.raises(ValueError):
            make_overlay("power-law", 5, rng)

    @pytest.mark.parametrize("kind", OVERLAY_KINDS)
    def test_connected_and_sized(self, kind, rng):
        g = make_overlay(kind, 100, rng)
        assert g.number_of_nodes() == 100
        assert nx.is_connected(g)
        assert min(d for _, d in g.degree()) >= 1

    @pytest.mark.parametrize("kind", OVERLAY_KINDS)
    def test_odd_sizes_supported(self, kind, rng):
        g = make_overlay(kind, 101, rng)
        assert g.number_of_nodes() == 101
        assert nx.is_connected(g)

    def test_deterministic_for_seeded_rng(self):
        a = make_overlay("power-law", 80, random.Random(3))
        b = make_overlay("power-law", 80, random.Random(3))
        assert sorted(a.edges) == sorted(b.edges)

    def test_power_law_has_hubs(self, rng):
        g = make_overlay("power-law", 300, rng)
        degrees = sorted((d for _, d in g.degree()), reverse=True)
        assert degrees[0] > 4 * degrees[len(degrees) // 2]

    def test_regular_graph_is_regular(self, rng):
        g = make_overlay("random-regular", 100, rng)
        degrees = {d for _, d in g.degree()}
        assert degrees == {6}

    def test_spectral_ordering_matches_structure(self, rng):
        """Expander-like regular graphs mix faster than ring lattices --
        the fact that makes walk-sampling quality topology-dependent."""
        regular = spectral_report(make_overlay("random-regular", 200, rng), "metropolis")
        lattice = spectral_report(make_overlay("ring-lattice", 200, rng), "metropolis")
        assert regular.spectral_gap > 3 * lattice.spectral_gap
