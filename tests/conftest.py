"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro import IdealDHT, SortedCircle
from repro.sim.rng import RngRegistry


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG, fresh per test."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def registry() -> RngRegistry:
    return RngRegistry(root_seed=42)


@pytest.fixture
def small_circle(rng) -> SortedCircle:
    """A fixed 64-peer random ring."""
    return SortedCircle.random(64, rng)


@pytest.fixture
def medium_dht(rng) -> IdealDHT:
    """A fixed 512-peer ideal DHT."""
    return IdealDHT.random(512, rng)
