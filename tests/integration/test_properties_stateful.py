"""Property-based integration tests: random churn schedules and replay
determinism."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ChordNetwork, RandomPeerSampler
from repro.sim.churn import ChurnProcess
from repro.sim.kernel import Simulator


class TestRandomChurnSchedules:
    """Any random mix of joins/leaves/crashes must be repairable."""

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        ops=st.lists(st.sampled_from(["join", "crash", "leave"]), min_size=1, max_size=12),
    )
    @settings(max_examples=15, deadline=None)
    def test_ring_recovers_from_any_schedule(self, seed, ops):
        net = ChordNetwork.build(16, m=18, rng=random.Random(seed))
        rng = random.Random(seed + 1)
        for op in ops:
            if op == "join":
                net.join_node()
            elif len(net) > 4:
                victim = rng.choice(list(net.nodes))
                if op == "crash":
                    net.crash_node(victim)
                else:
                    net.leave_node(victim)
            net.run_stabilization(2)
        net.run_stabilization(12)
        assert net.ring_is_correct()
        assert net.predecessors_correct()

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=10, deadline=None)
    def test_sampling_correct_after_recovery(self, seed):
        net = ChordNetwork.build(24, m=18, rng=random.Random(seed))
        rng = random.Random(seed + 7)
        for _ in range(4):
            net.crash_node(rng.choice(list(net.nodes)))
            net.join_node()
            net.run_stabilization(4)
        net.run_stabilization(10)
        sampler = RandomPeerSampler(net.dht(), rng=random.Random(seed + 9))
        for _ in range(5):
            assert sampler.sample().peer_id in net.nodes


class TestDeterministicReplay:
    """The whole simulation stack is a pure function of its seeds."""

    def _run(self, seed: int):
        sim = Simulator()
        net = ChordNetwork.build(20, m=18, rng=random.Random(seed), sim=sim)
        net.start_periodic_maintenance(interval=2.0)
        churn = ChurnProcess(net, sim, rate=0.2, rng=random.Random(seed + 1))
        churn.start()
        sim.run(until=60.0)
        return (
            sorted(net.nodes),
            [(e.time, e.kind, e.node_id) for e in churn.events],
            net.transport.messages_sent,
        )

    def test_same_seed_same_history(self):
        assert self._run(5) == self._run(5)

    def test_different_seed_different_history(self):
        assert self._run(5) != self._run(6)


class TestPublicApiDocumented:
    """Deliverable: doc comments on every public item."""

    def test_all_public_symbols_have_docstrings(self):
        import inspect

        import repro
        import repro.analysis as analysis
        import repro.apps as apps
        import repro.baselines as baselines
        import repro.bench as bench
        import repro.core as core
        import repro.dht as dht
        import repro.dht.chord as chord
        import repro.sim as sim

        missing = []
        for module in (repro, core, dht, chord, sim, baselines, analysis, apps, bench):
            for name in getattr(module, "__all__", []):
                if name.startswith("_") or name == "__version__":
                    continue
                obj = getattr(module, name)
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if not (obj.__doc__ or "").strip():
                        missing.append(f"{module.__name__}.{name}")
        assert not missing, f"undocumented public symbols: {missing}"

    def test_public_classes_have_documented_methods(self):
        import inspect

        from repro import ChordNetwork, IdealDHT, RandomPeerSampler
        from repro.core.biased import BiasedPeerSampler

        missing = []
        for cls in (RandomPeerSampler, IdealDHT, ChordNetwork, BiasedPeerSampler):
            for name, member in inspect.getmembers(cls, inspect.isfunction):
                if name.startswith("_"):
                    continue
                if not (member.__doc__ or "").strip():
                    missing.append(f"{cls.__name__}.{name}")
        assert not missing, f"undocumented public methods: {missing}"
