"""Failure-injection tests: the stack under lossy networks, crashes, and
stale estimates."""

from __future__ import annotations

import random

import pytest

from repro import ChordNetwork, IdealDHT, RandomPeerSampler
from repro.core.errors import SamplingError
from repro.dht.chord.node import LookupError_
from repro.sim.network import RpcTimeout


class TestLossyTransport:
    def test_stabilization_converges_despite_loss(self):
        net = ChordNetwork.build(
            25, m=18, rng=random.Random(1), loss_rate=0.1, perfect=True
        )
        # Churn under a 10%-loss network, then repair.  Under sustained
        # loss correctness is *eventual*: a lost ping can transiently
        # demote a live successor, so poll instead of checking one
        # arbitrary final round.
        victims = list(net.nodes)[:5]
        for v in victims:
            net.crash_node(v)
        for _ in range(5):
            net.join_node()
        converged_at = None
        for round_number in range(1, 61):
            net.stabilize_round()
            if net.ring_is_correct():
                converged_at = round_number
                break
        assert converged_at is not None, "ring never converged under loss"

    def test_lookups_eventually_succeed_under_loss(self):
        net = ChordNetwork.build(
            30, m=18, rng=random.Random(2), loss_rate=0.15, perfect=True
        )
        dht = net.dht()
        rng = random.Random(3)
        successes = 0
        for _ in range(30):
            try:
                peer = dht.h(1.0 - rng.random())
                successes += 1
                assert peer.peer_id in net.nodes
            except LookupError_:
                pass  # acceptable under sustained loss; must be rare
        assert successes >= 25

    def test_timeouts_are_counted(self):
        net = ChordNetwork.build(
            20, m=18, rng=random.Random(4), loss_rate=0.2, perfect=True
        )
        net.run_stabilization(5)
        assert net.transport.metrics.counter("rpc.timeouts").value > 0


class TestCrashDuringOperation:
    def test_next_handles_peer_crashing_mid_walk(self):
        net = ChordNetwork.build(24, m=18, rng=random.Random(5))
        dht = net.dht()
        ids = net.sorted_ids()
        ref = dht._ref(ids[3])
        net.crash_node(ids[3])
        # next() on a dead PeerRef falls back to h(point): the next live
        # clockwise peer.
        nxt = dht.next(ref)
        assert nxt.peer_id == ids[4]

    def test_sampling_continues_after_half_the_ring_crashes(self):
        net = ChordNetwork.build(40, m=18, rng=random.Random(6))
        victims = list(net.nodes)[::2]
        for v in victims:
            net.crash_node(v)
        net.run_stabilization(15)
        assert net.ring_is_correct()
        dht = net.dht()
        sampler = RandomPeerSampler(dht, rng=random.Random(7))
        for _ in range(20):
            assert sampler.sample().peer_id in net.nodes

    def test_rpc_timeout_charges_latency(self):
        net = ChordNetwork.build(10, m=18, rng=random.Random(8))
        victim = min(net.nodes)
        net.crash_node(victim)
        before = net.transport.elapsed
        with pytest.raises(RpcTimeout):
            net.transport.rpc(victim, "ping")
        assert net.transport.elapsed > before


class TestStaleEstimates:
    def test_gross_overestimate_still_uniform_but_slow(self):
        """n_hat >> n keeps correctness (Theorem 6 needs only n_hat >=
        gamma1 * n) at the price of more retries."""
        n = 64
        dht = IdealDHT.random(n, random.Random(9))
        sampler = RandomPeerSampler(
            dht, n_hat=float(16 * n), rng=random.Random(10), max_trials=100_000
        )
        from repro.core.assignment import compute_assignment

        report = compute_assignment(
            dht.circle, sampler.params.lam, sampler.params.walk_budget
        )
        assert report.is_exactly_uniform(1e-12)
        stats = sampler.sample_with_stats()
        assert stats.trials >= 1  # works, just needs patience

    def test_absurd_overestimate_raises_cleanly(self):
        dht = IdealDHT.random(8, random.Random(11))
        sampler = RandomPeerSampler(
            dht, n_hat=1e12, rng=random.Random(12), max_trials=50
        )
        with pytest.raises(SamplingError):
            sampler.sample()

    def test_underestimate_biases_toward_crowded_regions(self):
        """n_hat < gamma1*n shrinks the walk budget below what crowded
        regions need: the assignment is no longer exactly uniform.  This
        is the failure mode Theorem 6's precondition excludes."""
        from repro.core.assignment import compute_assignment
        from repro.core.sampler import SamplerParams

        dht = IdealDHT.random(200, random.Random(20))
        good = SamplerParams.from_estimate(200.0)
        # A gross underestimate makes lambda bigger than 1/n: assigning
        # measure lambda to all n peers is then impossible.
        bad = SamplerParams.from_estimate(2.0)
        good_report = compute_assignment(dht.circle, good.lam, good.walk_budget)
        bad_report = compute_assignment(dht.circle, bad.lam, bad.walk_budget)
        assert good_report.is_exactly_uniform(1e-12)
        assert not bad_report.is_exactly_uniform(1e-12)

    def test_reestimating_recovers_from_staleness(self):
        """The operational fix for staleness: run Estimate-n again."""
        from repro import estimate_n

        n = 128
        dht = IdealDHT.random(n, random.Random(13))
        fresh = estimate_n(dht)
        sampler = RandomPeerSampler(dht, n_hat=fresh.n_hat, rng=random.Random(14))
        assert sampler.sample() in dht.peers
