"""End-to-end integration: the full pipeline on both substrates.

These tests exercise the whole stack the way a downstream user would:
build a DHT, estimate the size, sample, and check the statistical and
cost guarantees -- on the analytic oracle and on simulated Chord, with
and without churn.
"""

from __future__ import annotations

import math
import random
from collections import Counter


from repro import (
    ChordNetwork,
    IdealDHT,
    RandomPeerSampler,
    compute_assignment,
    estimate_n,
)
from repro.analysis.stats import (
    chi_square_uniform,
    max_min_ratio,
    total_variation_from_uniform,
)
from repro.baselines.naive import NaiveSampler
from repro.sim.churn import ChurnProcess
from repro.sim.kernel import Simulator


class TestIdealPipeline:
    def test_estimate_then_sample_uniformly(self):
        n = 500
        dht = IdealDHT.random(n, random.Random(81))
        sampler = RandomPeerSampler(dht, rng=random.Random(82))  # auto-estimate
        counts = Counter(sampler.sample().peer_id for _ in range(20_000))
        dist = {i: counts.get(i, 0) / 20_000 for i in range(n)}
        assert total_variation_from_uniform(dist) < 0.12  # Monte-Carlo floor
        assert not chi_square_uniform(
            [counts.get(i, 0) for i in range(n)]
        ).rejects_uniformity(alpha=0.001)

    def test_uniform_sampler_beats_naive_decisively(self):
        n = 400
        draws = 40_000
        dht = IdealDHT.random(n, random.Random(83))
        uniform = RandomPeerSampler(dht, n_hat=float(n), rng=random.Random(84))
        naive = NaiveSampler(dht, random.Random(85))
        uni_counts = Counter(uniform.sample().peer_id for _ in range(draws))
        nai_counts = Counter(naive.sample().peer_id for _ in range(draws))
        uni_ratio = max_min_ratio([uni_counts.get(i, 0) + 1 for i in range(n)])
        nai_ratio = max_min_ratio([nai_counts.get(i, 0) + 1 for i in range(n)])
        assert nai_ratio > 5.0 * uni_ratio

    def test_theorem6_and_7_jointly(self):
        """Exact uniformity and O(log n) costs hold simultaneously."""
        n = 2048
        dht = IdealDHT.random(n, random.Random(86))
        sampler = RandomPeerSampler(dht, rng=random.Random(87))
        report = compute_assignment(
            dht.circle, sampler.params.lam, sampler.params.walk_budget
        )
        assert report.is_exactly_uniform(1e-12)
        stats = [sampler.sample_with_stats() for _ in range(100)]
        mean_messages = sum(s.cost.messages for s in stats) / len(stats)
        # O(log n) with the paper's (large) constants: E[trials] is up to
        # 7 * gamma2/gamma1 ~ 147 and each trial costs m_h + O(log n)
        # messages.  The paper itself flags the constants as an open
        # problem; we assert the logarithmic *scale*, not a tight constant.
        per_trial = math.log2(n) + 6.0 * math.log(7.0 * n / (2.0 / 7.0))
        trial_bound = 7.0 * 6.0 / (2.0 / 7.0)  # worst-case E[trials]
        assert mean_messages < trial_bound * per_trial


class TestChordPipeline:
    def test_full_pipeline_on_chord(self):
        n = 96
        net = ChordNetwork.build(n, m=18, rng=random.Random(91))
        dht = net.dht()
        est = estimate_n(dht)
        assert 0.1 * n < est.n_hat < 10 * n
        sampler = RandomPeerSampler(dht, n_hat=est.n_hat, rng=random.Random(92))
        counts = Counter(sampler.sample().peer_id for _ in range(3000))
        assert set(counts) <= set(net.nodes)
        observed = [counts.get(i, 0) for i in net.nodes]
        assert not chi_square_uniform(observed).rejects_uniformity(alpha=0.001)

    def test_chord_sampling_matches_ideal_on_same_ring(self):
        """The Chord adapter and the oracle implement the same h/next, so
        the deterministic trial must pick identical peers point-by-point."""
        net = ChordNetwork.build(64, m=16, rng=random.Random(93))
        chord_dht = net.dht()
        ideal = IdealDHT(net.to_circle())
        s_chord = RandomPeerSampler(chord_dht, n_hat=64.0)
        s_ideal = RandomPeerSampler(ideal, n_hat=64.0)
        rng = random.Random(94)
        for _ in range(200):
            s = 1.0 - rng.random()
            a = s_chord.trial(s)
            b = s_ideal.trial(s)
            assert a.outcome is b.outcome
            if a.peer is not None:
                assert a.peer.point == b.peer.point

    def test_sampling_during_churn(self):
        sim = Simulator()
        net = ChordNetwork.build(60, m=18, rng=random.Random(95), sim=sim)
        net.start_periodic_maintenance(interval=1.0)
        churn = ChurnProcess(
            net, sim, rate=0.05, rng=random.Random(96), target_size=60
        )
        churn.start()
        sampled = []
        for round_ in range(30):
            sim.run_for(5.0)
            net.run_stabilization(3)
            dht = net.dht()
            sampler = RandomPeerSampler(dht, rng=random.Random(97 + round_))
            peer = sampler.sample()
            sampled.append(peer.peer_id in net.nodes)
        # Samples taken after stabilization must be live members.
        assert sum(sampled) >= 28

    def test_cost_metering_consistency(self):
        """Messages metered by the sampler equal transport-level deltas."""
        net = ChordNetwork.build(32, m=16, rng=random.Random(98))
        dht = net.dht()
        sampler = RandomPeerSampler(dht, n_hat=32.0, rng=random.Random(99))
        before = net.transport.messages_sent
        stats = sampler.sample_with_stats()
        after = net.transport.messages_sent
        assert stats.cost.messages == after - before
