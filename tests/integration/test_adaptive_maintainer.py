"""Tests for the adaptive sampler and the random-link maintainer under
churn -- the operational layers completing the paper's motivations."""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro import ChordNetwork, IdealDHT
from repro.apps.linkmaintainer import RandomLinkMaintainer
from repro.core.adaptive import AdaptiveSampler


class TestAdaptiveSamplerBasics:
    def test_validation(self, medium_dht, rng):
        with pytest.raises(ValueError):
            AdaptiveSampler(medium_dht, refresh_every=0, rng=rng)
        with pytest.raises(ValueError):
            AdaptiveSampler(medium_dht, trial_alarm_factor=1.0, rng=rng)
        sampler = AdaptiveSampler(medium_dht, rng=rng)
        with pytest.raises(ValueError):
            sampler.sample_many(-1)

    def test_samples_are_valid_peers(self, medium_dht, rng):
        sampler = AdaptiveSampler(medium_dht, rng=rng)
        for peer in sampler.sample_many(20):
            assert peer in medium_dht.peers

    def test_initial_estimate_runs_once(self, medium_dht, rng):
        sampler = AdaptiveSampler(medium_dht, rng=rng)
        assert sampler.refreshes == 1
        assert sampler.n_hat > 1.0

    def test_periodic_refresh(self, rng):
        dht = IdealDHT.random(128, rng)
        sampler = AdaptiveSampler(dht, refresh_every=10, rng=rng)
        sampler.sample_many(35)
        assert sampler.refreshes >= 3

    def test_forced_refresh(self, medium_dht, rng):
        sampler = AdaptiveSampler(medium_dht, rng=rng)
        before = sampler.refreshes
        sampler.refresh()
        assert sampler.refreshes == before + 1


class TestAdaptiveUnderChurn:
    def test_tracks_population_growth(self):
        net = ChordNetwork.build(32, m=20, rng=random.Random(200))
        sampler = AdaptiveSampler(
            net.dht(), refresh_every=20, rng=random.Random(201)
        )
        stale = sampler.n_hat
        # Quadruple the network, then keep sampling: the estimate must
        # catch up via periodic refresh.
        for _ in range(96):
            net.join_node()
            net.run_stabilization(1)
        net.run_stabilization(8)
        sampler.sample_many(50)
        assert sampler.n_hat > 2.0 * stale

    def test_survives_population_collapse(self):
        net = ChordNetwork.build(64, m=20, rng=random.Random(202))
        sampler = AdaptiveSampler(
            net.dht(), refresh_every=10_000, rng=random.Random(203),
            max_trials=400,
        )
        victims = list(net.nodes)[: 48]
        for v in victims:
            net.crash_node(v)
        net.run_stabilization(12)
        # n dropped 4x: per-trial success shrank 4x; sampling must still
        # work (possibly triggering the trial alarm), never raise.
        for _ in range(25):
            assert sampler.sample().peer_id in net.nodes


class TestRandomLinkMaintainer:
    def test_validation(self):
        net = ChordNetwork.build(16, m=18, rng=random.Random(204))
        with pytest.raises(ValueError):
            RandomLinkMaintainer(net, links_per_node=0)

    def test_initial_repair_provisions_everyone(self):
        net = ChordNetwork.build(40, m=18, rng=random.Random(205))
        maintainer = RandomLinkMaintainer(net, links_per_node=4,
                                          rng=random.Random(206))
        report = maintainer.repair()
        assert report["added"] >= 40 * 4
        assert maintainer.is_fully_provisioned()
        g = maintainer.graph()
        assert g.number_of_nodes() == 40
        assert nx.is_connected(g)

    def test_no_self_links_or_duplicates(self):
        net = ChordNetwork.build(30, m=18, rng=random.Random(207))
        maintainer = RandomLinkMaintainer(net, links_per_node=3,
                                          rng=random.Random(208))
        maintainer.repair()
        for owner, targets in maintainer.links.items():
            assert owner not in targets
            assert len(targets) == 3  # set semantics: distinct by type

    def test_repair_replaces_dead_links(self):
        net = ChordNetwork.build(40, m=18, rng=random.Random(209))
        maintainer = RandomLinkMaintainer(net, links_per_node=4,
                                          rng=random.Random(210))
        maintainer.repair()
        victims = list(net.nodes)[:10]
        for v in victims:
            net.crash_node(v)
        net.run_stabilization(10)
        report = maintainer.repair()
        assert report["dropped"] >= 1
        assert maintainer.is_fully_provisioned()
        alive = set(net.nodes)
        for owner, targets in maintainer.links.items():
            assert owner in alive
            assert targets <= alive

    def test_overlay_stays_connected_through_churn_epochs(self):
        net = ChordNetwork.build(50, m=18, rng=random.Random(211))
        maintainer = RandomLinkMaintainer(net, links_per_node=4,
                                          rng=random.Random(212))
        maintainer.repair()
        rng = random.Random(213)
        for _ in range(6):
            for _ in range(5):
                net.crash_node(rng.choice(list(net.nodes)))
                net.join_node()
            net.run_stabilization(6)
            maintainer.repair()
            assert nx.is_connected(maintainer.graph())
        assert maintainer.is_fully_provisioned()
