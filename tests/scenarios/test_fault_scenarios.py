"""Tests for the structured-outage scenario lab (mass-kill, partition)."""

from __future__ import annotations

import json

import pytest

from repro.scenarios import (
    FAULT_PRESETS,
    FaultScenarioSpec,
    fault_preset,
    run_fault_scenario,
)


def smoke_spec(**overrides) -> FaultScenarioSpec:
    """A seconds-scale configuration for CI."""
    defaults = dict(
        name="smoke",
        n=128,
        m=12,
        probes=24,
        recovery_round_budget=40,
        recovery_chunk=4,
    )
    defaults.update(overrides)
    return FaultScenarioSpec(**defaults)


class TestSpecValidation:
    def test_presets_are_wellformed(self):
        assert set(FAULT_PRESETS) == {"mass-failure", "partition-heal"}
        assert FAULT_PRESETS["mass-failure"].fault == "mass-kill"
        assert FAULT_PRESETS["partition-heal"].fault == "partition"

    def test_fault_preset_overrides(self):
        spec = fault_preset("mass-failure", backend="kademlia", n=300)
        assert (spec.backend, spec.n) == ("kademlia", 300)
        with pytest.raises(KeyError):
            fault_preset("meteor-strike")

    @pytest.mark.parametrize(
        "overrides",
        [
            {"backend": "carrier-pigeon"},
            {"fault": "gamma-rays"},
            {"region": "blob"},
            {"partition_mode": "sideways"},
            {"n": 2},
            {"n": 1 << 13},  # does not fit in 2^12 ids
            {"kill_fraction": 1.0},
            {"partition_groups": 1},
            {"probes": 0},
            {"recovery_round_budget": 0},
            {"partition_duration": 0.0},
        ],
    )
    def test_rejects_bad_fields(self, overrides):
        with pytest.raises((ValueError, KeyError)):
            smoke_spec(**overrides)

    def test_retry_policy_reflects_spec(self):
        spec = smoke_spec(retry_attempts=5, retry_base_delay=0.25, retry_jitter=0.2)
        policy = spec.retry_policy()
        assert (policy.attempts, policy.base_delay, policy.jitter) == (5, 0.25, 0.2)

    def test_spec_record_is_jsonable(self):
        json.dumps(smoke_spec().to_record())


class TestMassFailureRecovery:
    @pytest.mark.parametrize("backend", ["chord", "kademlia"])
    def test_recovers_to_oracle_correct_lookups(self, backend):
        result = run_fault_scenario(
            smoke_spec(fault="mass-kill", kill_fraction=0.4, backend=backend)
        )
        assert result.population_after_fault < result.population_start
        assert result.baseline.error_rate == 0.0
        assert result.recovered
        assert result.post.error_rate == 0.0  # 100% oracle-correct
        assert result.recovery_rounds is not None
        assert result.recovery_rounds <= 40

    def test_outage_is_actually_painful(self):
        # A 40% arc kill must wound lookups before repair runs: if the
        # outage window shows no damage the scenario is not measuring.
        result = run_fault_scenario(smoke_spec(fault="mass-kill", n=256))
        assert result.outage.error_rate > 0.0
        assert result.msgs_inflation_outage > 1.0


class TestPartitionHealing:
    @pytest.mark.parametrize("backend", ["chord", "kademlia"])
    def test_heals_back_to_one_overlay(self, backend):
        result = run_fault_scenario(
            smoke_spec(fault="partition", backend=backend, outage_rounds=3)
        )
        # Partitions crash nobody; the population is intact throughout.
        assert result.population_after_fault == result.population_start
        assert result.recovered
        assert result.post.error_rate == 0.0

    def test_fault_log_records_apply_and_revert(self):
        result = run_fault_scenario(smoke_spec(fault="partition"))
        phases = [entry["phase"] for entry in result.fault_log]
        assert phases == ["apply", "revert"]


class TestDeterminism:
    def test_rerun_is_bit_identical(self):
        # The acceptance contract: all charges (including failed
        # attempts and backoff) flow through seeded streams, so the
        # same spec replays to an identical record.
        spec = smoke_spec(fault="mass-kill", retry_jitter=0.1)
        first = run_fault_scenario(spec).to_record()
        second = run_fault_scenario(spec).to_record()
        first.pop("wall_seconds")
        second.pop("wall_seconds")
        assert first == second

    def test_seed_changes_the_run(self):
        # Different seeds pick different victims and probe points, so
        # the measured phases diverge (the plan itself is fixed).
        base = smoke_spec(fault="mass-kill")
        a = run_fault_scenario(base).to_record()
        b = run_fault_scenario(base.with_(seed=1)).to_record()
        assert a["phases"] != b["phases"]

    def test_record_is_jsonable(self):
        record = run_fault_scenario(smoke_spec(fault="mass-kill")).to_record()
        parsed = json.loads(json.dumps(record))
        assert parsed["recovered"] is True
        assert parsed["phases"]["post"]["error_rate"] == 0.0
        assert "rpc.retries" in parsed["counters"] or parsed["counters"]


class TestAsyncTransport:
    """The same scenarios rerun on the message-level transport."""

    def async_spec(self, **overrides):
        return smoke_spec(
            n=96, probes=16, recovery_round_budget=60, transport="async", **overrides
        )

    @pytest.mark.parametrize("backend", ["chord", "kademlia"])
    def test_mass_failure_recovers_on_the_message_plane(self, backend):
        result = run_fault_scenario(
            self.async_spec(fault="mass-kill", kill_fraction=0.4, backend=backend)
        )
        assert result.baseline.error_rate == 0.0
        assert result.recovered
        assert result.post.error_rate == 0.0
        # The async-only observables: recovery wall time on the sim
        # clock, and hop RTTs from actual per-leg latency draws.
        assert result.recovery_sim_time is not None
        assert result.recovery_sim_time > 0.0
        assert result.hop_latency["count"] > 0
        # UniformLatency(0.5, 1.5) twice per round trip
        assert 1.0 <= result.hop_latency["p50"] <= 3.0
        assert result.hop_latency["p50"] <= result.hop_latency["p99"] <= 3.0

    @pytest.mark.parametrize("backend", ["chord", "kademlia"])
    def test_partition_heals_on_the_message_plane(self, backend):
        result = run_fault_scenario(
            self.async_spec(fault="partition", backend=backend, outage_rounds=3)
        )
        assert result.population_after_fault == result.population_start
        assert result.recovered
        assert result.post.error_rate == 0.0

    def test_rerun_is_bit_identical(self):
        # Event-scheduled delivery must not cost determinism: latency
        # draws, loss dies, retries, and backoff events all ride seeded
        # streams, so the whole record replays exactly.
        spec = self.async_spec(fault="mass-kill", retry_jitter=0.1)
        first = run_fault_scenario(spec).to_record()
        second = run_fault_scenario(spec).to_record()
        first.pop("wall_seconds")
        second.pop("wall_seconds")
        assert first == second

    def test_sync_runs_leave_async_observables_empty(self):
        result = run_fault_scenario(smoke_spec(fault="mass-kill"))
        assert result.recovery_sim_time is None
        assert result.hop_latency == {}

    def test_record_is_jsonable_with_async_extras(self):
        record = run_fault_scenario(self.async_spec(fault="mass-kill")).to_record()
        parsed = json.loads(json.dumps(record))
        assert parsed["spec"]["transport"] == "async"
        assert parsed["recovery_sim_time"] > 0.0
        assert parsed["hop_latency"]["count"] > 0
