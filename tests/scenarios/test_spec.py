"""Spec validation, presets and sweep expansion."""

from __future__ import annotations

import json

import pytest

from repro.scenarios import PRESETS, ScenarioSpec, preset, sweep


class TestValidation:
    def test_rejects_nonpositive_sizes(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", n=0)
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", shards=0)
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", requests=0)

    def test_rejects_small_id_space(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", n=100, chord_m=6)

    def test_rejects_bad_dynamics(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", churn_rate=-1.0)
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", crash_fraction=1.5)
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", stabilize_interval=-2.0)
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", rate=0.0)

    def test_with_revalidates(self):
        spec = ScenarioSpec(name="x")
        with pytest.raises(ValueError):
            spec.with_(crash_fraction=2.0)

    def test_churning_flag(self):
        assert not ScenarioSpec(name="x", churn_rate=0.0).churning
        assert ScenarioSpec(name="x", churn_rate=0.1).churning


class TestPresets:
    def test_canonical_regimes_exist(self):
        assert {"static", "smoke", "moderate", "crash-heavy"} <= set(PRESETS)

    def test_static_is_the_control(self):
        assert not PRESETS["static"].churning

    def test_preset_lookup_and_override(self):
        spec = preset("smoke", seed=9, requests=40)
        assert spec.seed == 9
        assert spec.requests == 40
        assert spec.name == "smoke"

    def test_unknown_preset_raises(self):
        with pytest.raises(KeyError):
            preset("chaos-monkey")

    def test_records_are_json_ready(self):
        for spec in PRESETS.values():
            json.dumps(spec.to_record())


class TestSweep:
    def test_grid_is_the_full_product(self):
        base = ScenarioSpec(name="base")
        specs = sweep(base, churn_rates=(0.1, 0.2), crash_fractions=(0.0, 0.5, 1.0),
                      stabilize_intervals=(1.0, 4.0))
        assert len(specs) == 12
        combos = {(s.churn_rate, s.crash_fraction, s.stabilize_interval) for s in specs}
        assert len(combos) == 12

    def test_none_interval_keeps_base_cadence(self):
        base = ScenarioSpec(name="base", stabilize_interval=7.0)
        (spec,) = sweep(base, churn_rates=(0.1,))
        assert spec.stabilize_interval == 7.0

    def test_names_are_self_describing(self):
        base = ScenarioSpec(name="lab")
        (spec,) = sweep(base, churn_rates=(0.25,), crash_fractions=(0.9,),
                        stabilize_intervals=(0.0,))
        assert spec.name == "lab/churn0.25-crash0.9-stab0"


class TestBackendField:
    def test_default_backend_is_chord(self):
        assert ScenarioSpec(name="x").backend == "chord"

    def test_backends_constant_is_accepted(self):
        from repro.scenarios import BACKENDS

        for backend in BACKENDS:
            assert ScenarioSpec(name="x", backend=backend).backend == backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", backend="pastry")

    def test_kademlia_knobs_validated(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", backend="kademlia", kad_k=0)
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", kad_alpha=0)

    def test_backend_lands_in_the_record(self):
        record = ScenarioSpec(name="x", backend="kademlia").to_record()
        assert record["backend"] == "kademlia"
