"""End-to-end scenario runs: accounting, determinism, recovery, reporting.

These are the stabilization-under-churn invariant tests: the service
must absorb live joins/leaves/crashes without losing a single request
or leaking an exception, and once churn stops bounded stabilization
must return every ring to correctness.
"""

from __future__ import annotations

import json

from repro.scenarios import (
    find_baseline,
    preset,
    results_record,
    results_table,
    run_scenario,
)

# One CI-sized churning run shared by the read-only assertions below.
_SPEC = preset("smoke", requests=80)
_RESULT = None


def smoke_result():
    global _RESULT
    if _RESULT is None:
        _RESULT = run_scenario(_SPEC)
    return _RESULT


class TestAccounting:
    def test_every_request_is_accounted_for(self):
        r = smoke_result()
        assert r.completed + r.failed + r.rejected == _SPEC.requests
        assert not r.truncated

    def test_churn_actually_happened_mid_run(self):
        r = smoke_result()
        assert r.churn_events > 0
        kinds = [s.churn_events for s in r.shards]
        assert any(sum(k.values()) > 0 for k in kinds)

    def test_populations_tracked_per_shard(self):
        r = smoke_result()
        for shard in r.shards:
            assert shard.population_start == _SPEC.n
            assert shard.population_end >= _SPEC.min_size

    def test_cost_is_metered(self):
        r = smoke_result()
        assert r.messages_per_sample is not None and r.messages_per_sample > 0
        for shard in r.shards:
            if shard.draws:
                assert shard.messages > 0

    def test_lockstep_engine_served_the_load(self):
        # chord shards resolve their micro-batches through the snapshot
        # engine; churn epochs force snapshot rebuilds along the way
        r = smoke_result()
        for shard in r.shards:
            if shard.draws:
                assert shard.lockstep_lookups > 0
                assert shard.snapshot_builds > 0
                assert shard.delegated_lookups >= 0


class TestStabilizationInvariant:
    def test_rings_recover_once_churn_stops(self):
        # ring_is_correct() eventually holds after churn stops: the
        # runner's bounded recovery phase must land every shard there.
        assert smoke_result().ring_recovered

    def test_crashing_regime_also_recovers(self):
        spec = preset("smoke", requests=40).with_(
            name="crashy", crash_fraction=1.0, churn_rate=0.1
        )
        result = run_scenario(spec)
        assert result.ring_recovered
        assert result.completed + result.failed + result.rejected == 40


class TestTruncation:
    def test_max_sim_time_bounds_the_run(self):
        # a trickle load that would take ~4000 sim units is cut off: the
        # generator stops offering, so the hard stop actually stops
        spec = preset("smoke", requests=400).with_(rate=0.1, max_sim_time=100.0)
        result = run_scenario(spec)
        assert result.truncated
        served = result.completed + result.failed + result.rejected
        assert served < spec.requests
        assert result.sim_time < 500.0  # drain only, not the leftover load


class TestUniformityReport:
    def test_uniformity_metrics_present(self):
        r = smoke_result()
        assert r.min_chi2_p is None or 0.0 <= r.min_chi2_p <= 1.0
        assert r.max_tv is None or 0.0 <= r.max_tv <= 1.0

    def test_static_control_has_no_churn(self):
        result = run_scenario(preset("smoke", requests=40).with_(
            name="static", churn_rate=0.0
        ))
        assert result.churn_events == 0
        assert result.ring_recovered
        # with no membership change every draw lands on a survivor
        assert all(s.live_fraction == 1.0 for s in result.shards if s.draws)


class TestDeterminismAndRecord:
    def test_same_seed_same_record(self):
        a = run_scenario(_SPEC).to_record()
        b = run_scenario(_SPEC).to_record()
        a.pop("wall_seconds")
        b.pop("wall_seconds")
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_record_is_json_ready(self):
        json.dumps(smoke_result().to_record())

    def test_report_table_and_record(self):
        static = run_scenario(_SPEC.with_(name="static", churn_rate=0.0))
        results = [static, smoke_result()]
        table = results_table(results)
        assert len(table.rows) == 2
        record = results_record(results, seed=_SPEC.seed, quick=True)
        assert record["baseline"] == "static"
        churny = record["scenarios"][1]
        assert churny["inflation"]["messages_per_sample"] is not None
        assert find_baseline(results) is static


class TestKademliaBackend:
    """The same scenario stack must drive the XOR overlay unchanged."""

    def test_churning_kademlia_scenario_end_to_end(self):
        spec = preset("smoke", backend="kademlia", n=20, chord_m=12, requests=50)
        result = run_scenario(spec)
        summary = result.summary
        offered = summary["completed"] + summary["failed"] + summary["rejected"]
        assert offered == 50  # nothing lost, nothing leaked
        assert result.churn_events >= 0
        assert result.ring_recovered  # bucket refresh restored the invariant
        assert not result.truncated
        assert result.to_record()["spec"]["backend"] == "kademlia"

    def test_kademlia_static_control_is_deterministic(self):
        spec = preset("static", backend="kademlia", n=24, chord_m=12, requests=40)
        a = run_scenario(spec).to_record()
        b = run_scenario(spec).to_record()
        a.pop("wall_seconds")
        b.pop("wall_seconds")
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
