"""Tests for the mutable fault surface (partitions, grey, bursts)."""

from __future__ import annotations

import pytest

from repro.faults.state import FaultState, GreyProfile


class TestPartitions:
    def test_full_partition_blocks_both_directions(self):
        faults = FaultState()
        faults.partition([[1, 2], [3, 4]], mode="full")
        assert faults.blocked(1, 3) and faults.blocked(3, 1)
        assert faults.blocked(2, 4) and faults.blocked(4, 2)
        assert not faults.blocked(1, 2)
        assert not faults.blocked(3, 4)

    def test_oneway_blocks_only_higher_to_lower(self):
        faults = FaultState()
        faults.partition([[1], [2]], mode="oneway")
        assert not faults.blocked(1, 2)  # group 0 still reaches group 1
        assert faults.blocked(2, 1)  # the way back is severed

    def test_ungrouped_nodes_are_unaffected(self):
        faults = FaultState()
        faults.partition([[1], [2]], mode="full")
        assert not faults.blocked(1, 99)
        assert not faults.blocked(99, 1)

    def test_external_clients_are_never_partitioned(self):
        faults = FaultState()
        faults.partition([[1], [2]], mode="full")
        assert not faults.blocked(None, 1)
        assert not faults.blocked(2, None)

    def test_heal_restores_reachability(self):
        faults = FaultState()
        faults.partition([[1], [2]])
        faults.heal_partition()
        assert not faults.blocked(1, 2)
        assert not faults.active

    def test_partition_validation(self):
        faults = FaultState()
        with pytest.raises(ValueError, match="mode"):
            faults.partition([[1], [2]], mode="sideways")
        with pytest.raises(ValueError, match="two"):
            faults.partition([[1, 2]])
        with pytest.raises(ValueError, match="two partition groups"):
            faults.partition([[1], [1, 2]])


class TestGreyAndBurst:
    def test_grey_profile_validation(self):
        with pytest.raises(ValueError):
            GreyProfile(latency_factor=0.5)
        with pytest.raises(ValueError):
            GreyProfile(extra_loss=1.0)

    def test_grey_touches_both_legs(self):
        faults = FaultState()
        faults.set_grey(5, latency_factor=10.0, extra_loss=0.25)
        assert faults.latency_factor(5, 1) == 10.0
        assert faults.latency_factor(1, 5) == 10.0
        assert faults.latency_factor(1, 2) == 1.0
        assert faults.extra_drop(5, 1) == pytest.approx(0.25)
        assert faults.extra_drop(1, 2) == 0.0

    def test_two_grey_endpoints_compose_independently(self):
        faults = FaultState()
        faults.set_grey(1, latency_factor=2.0, extra_loss=0.5)
        faults.set_grey(2, latency_factor=3.0, extra_loss=0.5)
        assert faults.latency_factor(1, 2) == 6.0
        assert faults.extra_drop(1, 2) == pytest.approx(0.75)

    def test_burst_composes_with_grey(self):
        faults = FaultState()
        faults.set_burst_loss(0.5)
        faults.set_grey(1, extra_loss=0.5)
        assert faults.extra_drop(1, 2) == pytest.approx(0.75)
        assert faults.extra_drop(3, 4) == pytest.approx(0.5)

    def test_clear_grey_restores_one_or_all(self):
        faults = FaultState()
        faults.set_grey(1, latency_factor=2.0)
        faults.set_grey(2, latency_factor=2.0)
        faults.clear_grey(1)
        assert faults.latency_factor(1, 9) == 1.0
        assert faults.latency_factor(2, 9) == 2.0
        faults.clear_grey()
        assert not faults.active

    def test_burst_validation(self):
        with pytest.raises(ValueError):
            FaultState().set_burst_loss(1.0)


class TestLifecycle:
    def test_active_tracks_every_fault_kind(self):
        faults = FaultState()
        assert not faults.active
        faults.set_burst_loss(0.1)
        assert faults.active
        faults.clear()
        assert not faults.active
        faults.set_grey(1, latency_factor=2.0)
        assert faults.active
        faults.clear()
        faults.partition([[1], [2]])
        assert faults.active
        faults.clear()
        assert not faults.active

    def test_describe_snapshot(self):
        faults = FaultState()
        faults.partition([[1], [2], [3]], mode="oneway")
        faults.set_grey(1, latency_factor=2.0)
        faults.set_burst_loss(0.2)
        snap = faults.describe()
        assert snap == {
            "active": True,
            "partition_mode": "oneway",
            "partition_groups": 3,
            "grey_nodes": 1,
            "burst_loss": 0.2,
        }
