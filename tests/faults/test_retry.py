"""Tests for the first-class retry/backoff policy."""

from __future__ import annotations

import random

import pytest

from repro.faults.retry import RetryPolicy, call_with_retry
from repro.sim.network import RpcTimeout, RpcTransport


class TestPolicyValidation:
    def test_defaults_are_valid(self):
        policy = RetryPolicy()
        assert policy.attempts == 3
        assert policy.retries == 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"attempts": 0},
            {"base_delay": -1.0},
            {"max_delay": -0.5},
            {"factor": 0.5},
            {"jitter": 1.0},
            {"jitter": -0.1},
        ],
    )
    def test_rejects_bad_fields(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_canned_policies(self):
        assert RetryPolicy.none().attempts == 1
        fixed = RetryPolicy.fixed(4, 0.25)
        assert (fixed.attempts, fixed.base_delay, fixed.factor) == (4, 0.25, 1.0)
        exp = RetryPolicy.exponential(5, 0.5, jitter=0.2)
        assert (exp.attempts, exp.factor, exp.jitter) == (5, 2.0, 0.2)

    def test_record_round_trip(self):
        policy = RetryPolicy(attempts=2, base_delay=0.5, jitter=0.1)
        assert RetryPolicy(**policy.to_record()) == policy


class TestDiscipline:
    def test_should_retry_is_attempt_budget(self):
        policy = RetryPolicy(attempts=3)
        assert policy.should_retry(1)
        assert policy.should_retry(2)
        assert not policy.should_retry(3)

    def test_exponential_growth_with_cap(self):
        policy = RetryPolicy(attempts=9, base_delay=1.0, factor=2.0, max_delay=5.0)
        assert [policy.delay(f) for f in (1, 2, 3, 4)] == [1.0, 2.0, 4.0, 5.0]

    def test_flat_policy_matches_legacy_backoff(self):
        # The legacy service loop waited a constant retry_backoff; the
        # equivalent policy is factor=1 with that base delay.
        policy = RetryPolicy(attempts=4, base_delay=0.75, factor=1.0)
        assert [policy.delay(f) for f in (1, 2, 3)] == [0.75, 0.75, 0.75]

    def test_failure_index_is_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)

    def test_jitter_free_policy_never_consumes_rng(self):
        rng = random.Random(1)
        before = rng.getstate()
        RetryPolicy(attempts=3, base_delay=1.0).delay(2, rng)
        assert rng.getstate() == before

    def test_zero_delay_never_consumes_rng_even_with_jitter(self):
        rng = random.Random(1)
        before = rng.getstate()
        assert RetryPolicy(attempts=3, base_delay=0.0, jitter=0.5).delay(1, rng) == 0.0
        assert rng.getstate() == before

    def test_jitter_bounds_and_determinism(self):
        policy = RetryPolicy(attempts=3, base_delay=2.0, factor=1.0, jitter=0.25)
        delays = [policy.delay(1, random.Random(s)) for s in range(50)]
        assert all(1.5 <= d <= 2.5 for d in delays)
        assert len(set(delays)) > 1  # jitter actually spreads
        again = [policy.delay(1, random.Random(s)) for s in range(50)]
        assert delays == again  # seeded, bit-identical

    def test_jittered_policy_demands_an_rng(self):
        with pytest.raises(ValueError, match="seeded rng"):
            RetryPolicy(attempts=2, base_delay=1.0, jitter=0.5).delay(1, None)


class Flaky:
    """RPC target that fails by staying unregistered until re-registered."""

    def ping(self):
        return "pong"


class TestCallWithRetry:
    def test_success_needs_no_retry(self):
        transport = RpcTransport()
        transport.register(1, Flaky())
        policy = RetryPolicy(attempts=3, base_delay=1.0)
        assert call_with_retry(transport, policy, 1, "ping") == "pong"
        assert transport.metrics.counter("rpc.retries").value == 0

    def test_all_attempts_charged_then_raises(self):
        transport = RpcTransport(timeout=8.0)
        policy = RetryPolicy(attempts=3, base_delay=0.5, factor=2.0)
        with pytest.raises(RpcTimeout):
            call_with_retry(transport, policy, 99, "ping")
        # Three failed attempts: each charges a lost message + timeout;
        # two backoffs (0.5 + 1.0) are charged between them.
        assert transport.metrics.counter("rpc.timeouts").value == 3
        assert transport.metrics.counter("rpc.retries").value == 2
        assert transport.messages_sent == 3
        assert transport.elapsed == pytest.approx(3 * 8.0 + 0.5 + 1.0)

    def test_charges_are_replayable(self):
        def run():
            transport = RpcTransport()
            policy = RetryPolicy(attempts=4, base_delay=0.5, jitter=0.3)
            with pytest.raises(RpcTimeout):
                call_with_retry(
                    transport, policy, 7, "ping", rng=random.Random(42)
                )
            return transport.elapsed, transport.messages_sent

        assert run() == run()


class TestDeadlineBudget:
    def test_deadline_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(deadline=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(deadline=-1.0)
        assert RetryPolicy().deadline is None  # unbounded by default

    def test_within_deadline_semantics(self):
        unbounded = RetryPolicy()
        assert unbounded.within_deadline(1e9)
        bounded = RetryPolicy(deadline=10.0)
        assert bounded.within_deadline(9.999)
        assert not bounded.within_deadline(10.0)

    def test_deadline_round_trips_through_record(self):
        policy = RetryPolicy(attempts=2, deadline=12.5)
        assert RetryPolicy(**policy.to_record()) == policy

    def test_sync_retry_stops_when_budget_spent(self):
        # timeout=8, flat 1.0 backoff, deadline=18: the first failure
        # spends 8 and retries (8+1 < 18); the second has spent 17 and
        # the next backoff would reach the budget (17+1 >= 18), so the
        # remaining three attempts are abandoned.
        transport = RpcTransport(timeout=8.0)
        policy = RetryPolicy(
            attempts=5, base_delay=1.0, factor=1.0, deadline=18.0
        )
        with pytest.raises(RpcTimeout):
            call_with_retry(transport, policy, 99, "ping")
        assert transport.metrics.counter("rpc.timeouts").value == 2
        assert transport.metrics.counter("rpc.retries").value == 1
        assert transport.messages_sent == 2
        assert transport.elapsed == pytest.approx(2 * 8.0 + 1.0)

    def test_sync_deadline_never_fires_when_budget_is_ample(self):
        transport = RpcTransport(timeout=8.0)
        generous = RetryPolicy(attempts=3, base_delay=0.5, deadline=1e6)
        with pytest.raises(RpcTimeout):
            call_with_retry(transport, generous, 99, "ping")
        assert transport.metrics.counter("rpc.timeouts").value == 3  # full budget


class TestCallWithRetryAsync:
    def _fixture(self, timeout=4.0):
        from repro.sim.async_net import AsyncRpcTransport
        from repro.sim.kernel import Simulator
        from repro.sim.network import ConstantLatency

        sim = Simulator()
        transport = AsyncRpcTransport(
            sim, latency=ConstantLatency(1.0), rng=random.Random(0), timeout=timeout
        )
        transport.register(1, Flaky())
        return sim, transport

    def test_backoff_elapses_as_simulator_events(self):
        from repro.faults.retry import call_with_retry_async

        sim, transport = self._fixture(timeout=4.0)
        failures = []
        policy = RetryPolicy(attempts=3, base_delay=2.0, factor=1.0)
        call_with_retry_async(
            transport.endpoint(1), policy, 99, "ping", on_timeout=failures.append
        )
        sim.run()
        # attempts at 0, 6, 12; each times out 4 later; the final one
        # surfaces at 16 -- the backoffs really sat on the clock.
        assert len(failures) == 1
        assert sim.now == 16.0
        assert transport.metrics.counter("rpc.timeouts").value == 3
        assert transport.metrics.counter("rpc.retries").value == 2
        assert transport.messages_sent == 3
        assert transport.elapsed == pytest.approx(3 * 4.0 + 2 * 2.0)

    def test_deadline_cuts_the_attempt_budget(self):
        from repro.faults.retry import call_with_retry_async

        sim, transport = self._fixture(timeout=4.0)
        failures = []
        policy = RetryPolicy(
            attempts=5, base_delay=2.0, factor=1.0, deadline=9.0
        )
        call_with_retry_async(
            transport.endpoint(1), policy, 99, "ping", on_timeout=failures.append
        )
        sim.run()
        # first failure: spent 4, backoff to 6; second failure at 10 has
        # spent 10 >= 9, so three budgeted attempts are surrendered.
        assert len(failures) == 1
        assert sim.now == 10.0
        assert transport.metrics.counter("rpc.timeouts").value == 2
        assert transport.metrics.counter("rpc.retries").value == 1

    def test_target_coming_back_during_backoff_succeeds(self):
        from repro.faults.retry import call_with_retry_async

        sim, transport = self._fixture(timeout=4.0)
        replies = []
        policy = RetryPolicy(attempts=3, base_delay=2.0, factor=1.0)
        call_with_retry_async(
            transport.endpoint(1), policy, 5, "ping", on_reply=replies.append
        )
        # node 5 boots at t=5, mid-backoff; the t=6 retry reaches it.
        sim.schedule(5.0, lambda: transport.register(5, Flaky()))
        sim.run()
        assert replies == ["pong"]
        assert sim.now == 8.0  # retry at 6 + two one-second legs
        assert transport.metrics.counter("rpc.retries").value == 1
