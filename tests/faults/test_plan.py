"""Tests for declarative fault plans and their injectors."""

from __future__ import annotations

import random

import pytest

from repro.dht.chord.network import ChordNetwork
from repro.faults.plan import (
    FaultPlan,
    GreyFailure,
    LossBurst,
    MassKill,
    Partition,
    select_region,
)
from repro.faults.state import FaultState
from repro.sim.kernel import Simulator


def small_network(n=16, seed=1, sim=None):
    net = ChordNetwork.build(n, m=10, rng=random.Random(seed), sim=sim)
    net.transport.install_faults(FaultState())
    return net


class TestSelectRegion:
    def test_arc_is_contiguous_in_ring_order(self):
        ids = sorted(random.Random(3).sample(range(1000), 40))
        victims = select_region(ids, 10, "arc", random.Random(7))
        start = ids.index(victims[0])
        expected = [ids[(start + j) % len(ids)] for j in range(10)]
        assert victims == expected

    def test_random_draws_from_membership(self):
        ids = list(range(0, 100, 5))
        victims = select_region(ids, 8, "random", random.Random(7))
        assert len(victims) == 8
        assert set(victims) <= set(ids)

    def test_count_is_clamped(self):
        assert select_region([1, 2, 3], 10, "random", random.Random(0)) in (
            [1, 2, 3],
        )
        assert select_region([1, 2, 3], 0, "arc", random.Random(0)) == []

    def test_unknown_region_rejected(self):
        with pytest.raises(ValueError, match="region"):
            select_region([1, 2], 1, "diagonal", random.Random(0))


class TestInjectors:
    def test_mass_kill_crashes_the_requested_fraction(self):
        net = small_network(20)
        victims = MassKill(fraction=0.4, region="arc").apply(net, random.Random(5))
        assert len(victims) == 8  # ceil(0.4 * 20)
        assert all(v not in net.nodes for v in victims)
        assert len(net.nodes) == 12

    def test_mass_kill_always_leaves_a_survivor(self):
        net = small_network(4)
        MassKill(fraction=0.99).apply(net, random.Random(5))
        assert len(net.nodes) >= 1

    def test_partition_apply_and_revert(self):
        net = small_network(16)
        event = Partition(groups=2, mode="full", region="arc")
        groups = event.apply(net, random.Random(5))
        assert sorted(len(g) for g in groups) == [8, 8]
        a, b = groups[0][0], groups[1][0]
        assert net.transport.faults.blocked(a, b)
        event.revert(net, groups)
        assert not net.transport.faults.active

    def test_grey_failure_apply_and_revert(self):
        net = small_network(16)
        event = GreyFailure(fraction=0.25, latency_factor=4.0, extra_loss=0.2)
        victims = event.apply(net, random.Random(5))
        assert len(victims) == 4
        profile = net.transport.faults.grey_nodes[victims[0]]
        assert (profile.latency_factor, profile.extra_loss) == (4.0, 0.2)
        event.revert(net, victims)
        assert not net.transport.faults.active

    def test_loss_burst_apply_and_revert(self):
        net = small_network(8)
        event = LossBurst(extra_loss=0.5)
        event.apply(net, random.Random(5))
        assert net.transport.faults.burst_loss == 0.5
        event.revert(net)
        assert not net.transport.faults.active

    @pytest.mark.parametrize(
        "event",
        [
            lambda: MassKill(fraction=0.0),
            lambda: MassKill(region="blob"),
            lambda: Partition(groups=1),
            lambda: Partition(duration=0.0),
            lambda: GreyFailure(fraction=1.5),
            lambda: LossBurst(extra_loss=0.0),
        ],
    )
    def test_injector_validation(self, event):
        with pytest.raises(ValueError):
            event()


class TestFaultPlan:
    def test_rejects_non_events(self):
        with pytest.raises(TypeError, match="not a fault event"):
            FaultPlan(events=("boom",))

    def test_schedule_applies_and_reverts_on_the_sim_clock(self):
        sim = Simulator()
        net = small_network(16, sim=sim)
        plan = FaultPlan(
            events=(Partition(at=5.0, duration=10.0, groups=2, region="arc"),)
        )
        log = plan.schedule(sim, net, random.Random(9))

        sim.run(until=4.0)
        assert not net.transport.faults.active
        sim.run(until=5.0)
        assert net.transport.faults.partitioned
        sim.run(until=15.0)
        assert not net.transport.faults.active
        assert [entry["phase"] for entry in log] == ["apply", "revert"]
        assert [entry["time"] for entry in log] == [5.0, 15.0]
        assert log[0]["event"]["kind"] == "partition"

    def test_mass_kill_fires_once_and_has_no_revert(self):
        sim = Simulator()
        net = small_network(16, sim=sim)
        plan = FaultPlan(events=(MassKill(at=2.0, fraction=0.5),))
        log = plan.schedule(sim, net, random.Random(9))
        sim.run(until=100.0)
        assert len(net.nodes) == 8
        assert [entry["phase"] for entry in log] == ["apply"]

    def test_plans_are_deterministic_under_a_fixed_seed(self):
        def run():
            sim = Simulator()
            net = small_network(16, sim=sim)
            plan = FaultPlan(events=(MassKill(at=1.0, fraction=0.4),))
            plan.schedule(sim, net, random.Random(123))
            sim.run(until=2.0)
            return sorted(net.nodes)

        assert run() == run()

    def test_to_record_is_jsonable(self):
        plan = FaultPlan(
            events=(MassKill(at=1.0), Partition(at=2.0), LossBurst(at=3.0))
        )
        kinds = [rec["kind"] for rec in plan.to_record()]
        assert kinds == ["mass-kill", "partition", "loss-burst"]
