"""Routing-policy tests over stub shard workers."""

from __future__ import annotations

import pytest

from repro.service.request import SampleRequest
from repro.service.router import POLICIES, ShardRouter, rendezvous_weight


class StubShard:
    def __init__(self, shard_id: int, load: int = 0):
        self.shard_id = shard_id
        self.load = load


def req(i: int, key: int | None = None) -> SampleRequest:
    return SampleRequest(request_id=i, arrival_time=0.0, key=-1 if key is None else key)


class TestRoundRobin:
    def test_rotates_in_order(self):
        shards = [StubShard(i) for i in range(3)]
        router = ShardRouter(shards, policy="round-robin")
        picks = [router.route(req(i)).shard_id for i in range(7)]
        assert picks == [0, 1, 2, 0, 1, 2, 0]


class TestLeastLoaded:
    def test_picks_min_load(self):
        shards = [StubShard(0, load=5), StubShard(1, load=2), StubShard(2, load=9)]
        router = ShardRouter(shards, policy="least-loaded")
        assert router.route(req(0)).shard_id == 1

    def test_ties_break_to_lowest_id(self):
        shards = [StubShard(0, load=3), StubShard(1, load=3)]
        router = ShardRouter(shards, policy="least-loaded")
        assert router.route(req(0)).shard_id == 0

    def test_tracks_changing_load(self):
        shards = [StubShard(0, load=0), StubShard(1, load=0)]
        router = ShardRouter(shards, policy="least-loaded")
        assert router.route(req(0)).shard_id == 0
        shards[0].load = 4
        assert router.route(req(1)).shard_id == 1


class TestRendezvous:
    def test_key_affinity_is_stable(self):
        shards = [StubShard(i) for i in range(4)]
        router = ShardRouter(shards, policy="rendezvous")
        assert router.route(req(0, key=42)).shard_id == router.route(req(1, key=42)).shard_id

    def test_defaults_key_to_request_id(self):
        shards = [StubShard(i) for i in range(4)]
        router = ShardRouter(shards, policy="rendezvous")
        # same request id -> same shard; routing_key falls back to the id
        assert router.route(req(7)).shard_id == router.route(req(7)).shard_id

    def test_spreads_keys_across_shards(self):
        shards = [StubShard(i) for i in range(4)]
        router = ShardRouter(shards, policy="rendezvous")
        picks = {router.route(req(i, key=i)).shard_id for i in range(200)}
        assert picks == {0, 1, 2, 3}

    def test_minimal_reshuffle_on_shard_removal(self):
        # HRW's defining property: removing a shard only moves the keys
        # that lived on it.
        all_shards = [StubShard(i) for i in range(4)]
        survivors = [s for s in all_shards if s.shard_id != 2]
        before = ShardRouter(all_shards, policy="rendezvous")
        after = ShardRouter(survivors, policy="rendezvous")
        for key in range(300):
            old = before.route(req(key, key=key)).shard_id
            new = after.route(req(key, key=key)).shard_id
            if old != 2:
                assert new == old

    def test_weight_is_process_independent(self):
        # sha256-derived, so a fixed pair must hash identically forever
        assert rendezvous_weight(0, 0) == rendezvous_weight(0, 0)
        assert rendezvous_weight(1, 42) != rendezvous_weight(2, 42)


class TestValidation:
    def test_rejects_empty_shard_set(self):
        with pytest.raises(ValueError):
            ShardRouter([], policy="round-robin")

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            ShardRouter([StubShard(0)], policy="random")

    def test_policies_constant_matches_accepted(self):
        for policy in POLICIES:
            ShardRouter([StubShard(0)], policy=policy)
