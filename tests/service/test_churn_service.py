"""Churn-awareness of the serving layer: retries, failover, re-admission.

These tests drive the shard worker's failure state machine directly with
a scripted dispatch strategy (fails N times, then serves), so every
branch -- retry after backoff, health flip, router shedding, explicit
FAILED termination, re-admission on success -- is pinned without needing
a real churning substrate underneath.
"""

from __future__ import annotations

import pytest

from repro.core.errors import SamplingError
from repro.dht.api import CostSnapshot, PeerRef, PeerUnreachableError
from repro.service.batching import ShardWorker
from repro.service.dispatch import BatchDispatch, DispatchError, Execution, ScalarDispatch
from repro.service.metrics import ServiceMetrics
from repro.service.request import RequestStatus, SampleRequest
from repro.service.router import ShardRouter
from repro.sim.kernel import Simulator


def _peer(i: int) -> PeerRef:
    return PeerRef(peer_id=i, point=(i + 1) / 64.0)


class ScriptedDispatch:
    """Raises DispatchError for the first ``failures`` executions."""

    def __init__(self, failures: int):
        self.failures = failures
        self.executions = 0
        self.refreshes = 0

    def execute(self, k: int) -> Execution:
        self.executions += 1
        if self.executions <= self.failures:
            raise DispatchError("scripted churn failure")
        return Execution(
            peers=tuple(_peer(i) for i in range(k)),
            cost=CostSnapshot(h_calls=k, next_calls=0, messages=k, latency=float(k)),
            trials=k,
            dispatches=1,
        )

    def refresh(self) -> bool:
        self.refreshes += 1
        return True


def make_worker(failures: int, *, max_retries: int = 2, metrics: ServiceMetrics | None = None):
    sim = Simulator()
    dispatch = ScriptedDispatch(failures)
    sink: list = []
    worker = ShardWorker(
        0,
        sim,
        dispatch,
        metrics=metrics,
        sink=sink.append,
        max_batch=4,
        max_wait=1.0,
        max_retries=max_retries,
        retry_backoff=3.0,
    )
    return sim, dispatch, worker, sink


def offer(worker, sim, count: int):
    for i in range(count):
        worker.offer(SampleRequest(request_id=i, arrival_time=sim.now))


class TestRetryPath:
    def test_retries_then_serves(self):
        sim, dispatch, worker, sink = make_worker(failures=1)
        offer(worker, sim, 4)  # full batch -> immediate flush -> failure
        assert not worker.healthy  # failure marks the shard down
        sim.run()
        assert [r.status for r in sink] == [RequestStatus.OK] * 4
        assert worker.healthy  # success re-admits it
        assert worker.retries == 1
        assert worker.dispatch_failures == 1
        assert dispatch.refreshes == 1  # recovery re-estimates parameters

    def test_retry_waits_for_backoff(self):
        sim, dispatch, worker, sink = make_worker(failures=1)
        offer(worker, sim, 4)
        assert sink == []  # nothing served yet
        sim.run(until=2.9)  # backoff is 3.0: still cooling
        assert dispatch.executions == 1
        sim.run()
        assert dispatch.executions == 2
        assert [r.status for r in sink] == [RequestStatus.OK] * 4

    def test_requeued_batch_keeps_fifo_order(self):
        sim, dispatch, worker, sink = make_worker(failures=1)
        offer(worker, sim, 4)
        sim.run()
        assert [r.request_id for r in sink] == [0, 1, 2, 3]

    def test_metrics_count_dispatch_failures(self):
        metrics = ServiceMetrics(1)
        sim, dispatch, worker, sink = make_worker(failures=2, metrics=metrics)
        offer(worker, sim, 4)
        sim.run()
        assert metrics.dispatch_failures == 2
        assert metrics.failed == 0
        assert metrics.completed == 4


class TestFailurePath:
    def test_exhausted_retries_fail_batch_explicitly(self):
        metrics = ServiceMetrics(1)
        sim, dispatch, worker, sink = make_worker(
            failures=10, max_retries=2, metrics=metrics
        )
        offer(worker, sim, 4)
        sim.run()
        # 1 initial + 2 retries, then the batch is terminated
        assert dispatch.executions == 3
        assert [r.status for r in sink] == [RequestStatus.FAILED] * 4
        assert all(r.peer is None for r in sink)
        assert worker.failed_requests == 4
        assert metrics.failed == 4
        # half-open: after one further backoff the idle shard re-admits
        # itself so the router will offer it traffic again
        assert worker.healthy

    def test_failed_waits_land_in_their_own_histogram(self):
        metrics = ServiceMetrics(1)
        sim, dispatch, worker, sink = make_worker(
            failures=10, max_retries=1, metrics=metrics
        )
        offer(worker, sim, 4)
        sim.run()
        summary = metrics.summary()
        failed_wait = summary["latency"]["failed_wait"]
        assert failed_wait["count"] == 4
        assert failed_wait["max"] == pytest.approx(3.0)  # one backoff burned
        # success-only percentiles stay success-only
        assert summary["latency"]["total_latency"]["count"] == 0

    def test_failed_responses_carry_waiting_time(self):
        sim, dispatch, worker, sink = make_worker(failures=10, max_retries=1)
        offer(worker, sim, 4)
        sim.run()
        # one failure + one retry, each preceded by a 3.0 backoff at most;
        # the FAILED stamp happens at the second failure (t = 3.0)
        assert all(r.queue_latency == pytest.approx(3.0) for r in sink)
        assert all(r.service_latency == 0.0 for r in sink)

    def test_worker_recovers_after_failing_a_batch(self):
        sim, dispatch, worker, sink = make_worker(failures=3, max_retries=2)
        offer(worker, sim, 4)
        sim.run()
        assert [r.status for r in sink] == [RequestStatus.FAILED] * 4
        offer(worker, sim, 4)  # the substrate has "healed" (failures spent)
        sim.run()
        assert [r.status for r in sink[4:]] == [RequestStatus.OK] * 4
        assert worker.healthy


class TestHealthAwareRouting:
    def test_router_sheds_unhealthy_shards(self):
        sim = Simulator()
        healthy = ShardWorker(0, sim, ScriptedDispatch(0), max_batch=4)
        sick = ShardWorker(1, sim, ScriptedDispatch(99), max_batch=1,
                           max_retries=0, retry_backoff=5.0)
        sick.offer(SampleRequest(request_id=100, arrival_time=0.0))
        sim.run(until=1.0)  # failure processed; re-admission probe not yet due
        assert not sick.healthy
        router = ShardRouter([sick, healthy], policy="round-robin")
        picks = {router.route(SampleRequest(request_id=i, arrival_time=0.0)).shard_id
                 for i in range(4)}
        assert picks == {0}

    def test_idle_unhealthy_shard_readmits_after_cooldown(self):
        # a drained unhealthy shard gets no traffic from the router, so
        # it must re-admit itself (half-open) rather than stay
        # quarantined forever
        sim = Simulator()
        sick = ShardWorker(0, sim, ScriptedDispatch(1), max_batch=1,
                           max_retries=0, retry_backoff=5.0)
        sick.offer(SampleRequest(request_id=0, arrival_time=0.0))
        sim.run(until=1.0)
        assert not sick.healthy and sick.load == 0  # failed and drained
        sim.run()  # the probe fires at t=5.0
        assert sick.healthy
        sick.offer(SampleRequest(request_id=1, arrival_time=sim.now))
        sim.run()
        assert sick.healthy  # and the substrate has healed: traffic serves

    def test_router_degrades_to_full_set_when_all_unhealthy(self):
        sim = Simulator()
        workers = []
        for shard_id in range(2):
            w = ShardWorker(shard_id, sim, ScriptedDispatch(99), max_batch=1,
                            max_retries=0, retry_backoff=5.0)
            w.offer(SampleRequest(request_id=shard_id, arrival_time=0.0))
            workers.append(w)
        sim.run(until=1.0)  # failures processed; re-admission probes not yet due
        assert all(not w.healthy for w in workers)
        router = ShardRouter(workers, policy="round-robin")
        picks = [router.route(SampleRequest(request_id=i, arrival_time=0.0)).shard_id
                 for i in range(4)]
        assert picks == [0, 1, 0, 1]


class _UnreachableDHT:
    """A substrate whose peers are all gone."""

    def __init__(self):
        from repro.dht.api import CostMeter

        self.cost = CostMeter()

    def h(self, x: float) -> PeerRef:
        raise PeerUnreachableError("everyone left")

    def h_many(self, xs):
        return [self.h(x) for x in xs]

    def next(self, peer: PeerRef) -> PeerRef:
        raise PeerUnreachableError("everyone left")

    def any_peer(self) -> PeerRef:
        return _peer(0)


class TestDispatchErrorBoundary:
    def test_batch_dispatch_wraps_substrate_liveness_errors(self):
        from repro.core.engine import BatchSampler

        sampler = BatchSampler(_UnreachableDHT(), n_hat=8.0, max_trials=3)
        with pytest.raises(DispatchError):
            BatchDispatch(sampler).execute(2)

    def test_scalar_dispatch_wraps_sampling_errors(self):
        from repro.core.sampler import RandomPeerSampler

        sampler = RandomPeerSampler(_UnreachableDHT(), n_hat=8.0, max_trials=3)
        with pytest.raises(DispatchError):
            ScalarDispatch(sampler).execute(1)

    def test_dispatch_error_is_not_a_sampling_error(self):
        # the worker catches DispatchError only; the boundary must not leak
        assert not issubclass(DispatchError, SamplingError)
        assert not issubclass(DispatchError, PeerUnreachableError)
