"""End-to-end sampling-service tests: determinism, uniformity through
the full request path, backpressure accounting, and substrate mixing."""

from __future__ import annotations

import pytest

from repro.analysis.stats import chi_square_uniform
from repro.dht.ideal import IdealDHT
from repro.service import (
    RequestStatus,
    SamplingService,
    ServiceTimeModel,
    build_load,
    build_service,
    build_substrates,
)


def drive(service: SamplingService, *, rate: float, total: int, seed: int = 0) -> None:
    gen = build_load(service, rate=rate, total=total, seed=seed)
    gen.start()
    service.run()
    assert service.pending == 0


def run_fingerprint(seed: int, **kwargs):
    service = build_service(n=200, shards=2, seed=seed, **kwargs)
    drive(service, rate=2.0, total=400, seed=seed)
    trace = [
        (
            r.request_id,
            r.status.value,
            r.shard_id,
            None if r.peer is None else r.peer.peer_id,
            r.queue_latency,
            r.service_latency,
        )
        for r in service.responses
    ]
    return trace, service.metrics.registry.counters()


class TestDeterminism:
    def test_same_seed_same_assignments_and_counts(self):
        assert run_fingerprint(7) == run_fingerprint(7)

    def test_different_seed_differs(self):
        assert run_fingerprint(7)[0] != run_fingerprint(8)[0]

    def test_scalar_dispatch_deterministic_too(self):
        a = run_fingerprint(3, dispatch="scalar", max_batch=1, max_queue=64)
        b = run_fingerprint(3, dispatch="scalar", max_batch=1, max_queue=64)
        assert a == b

    @pytest.mark.parametrize("policy", ["round-robin", "least-loaded", "rendezvous"])
    def test_each_policy_deterministic(self, policy):
        assert run_fingerprint(5, policy=policy) == run_fingerprint(5, policy=policy)


class TestUniformityThroughService:
    def test_served_samples_are_uniform(self):
        # Two shards serving the *same* ring: the union of served draws
        # must be uniform over the n peers (chi-square through the full
        # loadgen -> router -> queue -> batch -> response path).
        n, total = 64, 8000
        service = build_service(
            n=n, shards=2, seed=13, replicate_rings=True,
            max_batch=64, max_wait=1.0, max_queue=100_000,
        )
        drive(service, rate=50.0, total=total, seed=13)
        completed = service.completed
        assert len(completed) == total  # nothing rejected at this bound
        counts = [0] * n
        for r in completed:
            counts[r.peer.peer_id] += 1
        result = chi_square_uniform(counts)
        assert result.p_value > 0.01

    def test_replicated_rings_share_points(self):
        subs = build_substrates(32, 2, substrate="ideal", seed=4, replicate_rings=True)
        assert list(subs[0].points_array()) == list(subs[1].points_array())
        subs = build_substrates(32, 2, substrate="ideal", seed=4)
        assert list(subs[0].points_array()) != list(subs[1].points_array())


class TestBackpressure:
    def test_overload_rejects_explicitly_and_accounts_for_everything(self):
        total = 600
        service = build_service(
            n=200, shards=2, seed=21,
            max_batch=8, max_wait=1.0, max_queue=16,
            time_model=ServiceTimeModel(dispatch_overhead=5.0, time_per_latency=0.01),
        )
        drive(service, rate=20.0, total=total, seed=21)  # far beyond capacity
        m = service.metrics
        assert m.rejected > 0  # overload was visible, not silently absorbed
        assert m.accepted + m.rejected == total  # every request accounted
        assert m.completed == m.accepted  # drained: all admitted served
        assert len(service.responses) == total
        rejected = [r for r in service.responses if r.status is RequestStatus.REJECTED]
        assert len(rejected) == m.rejected
        assert all(r.peer is None and r.batch_size == 0 for r in rejected)
        by_shard = sum(
            s["rejected"] for s in service.summary()["shards"].values()
        )
        assert by_shard == m.rejected

    def test_queue_bound_is_respected_momentarily(self):
        service = build_service(n=100, shards=1, seed=2, max_queue=4, max_batch=4,
                                max_wait=10.0)
        # submit a burst at t=0; the 5th+ must be rejected once load hits 4
        for _ in range(10):
            service.submit()
        assert all(s.load <= 4 for s in service.shards)
        assert service.metrics.rejected > 0


class TestDispatchModes:
    def test_scalar_and_batch_both_serve_all(self):
        for dispatch, max_batch in (("batch", 16), ("scalar", 1)):
            service = build_service(
                n=150, shards=2, seed=6, dispatch=dispatch, max_batch=max_batch,
                max_queue=10_000,
            )
            drive(service, rate=1.0, total=200, seed=6)
            assert service.metrics.completed == 200
            assert all(r.peer is not None for r in service.completed)

    def test_scalar_mode_is_per_request_regardless_of_max_batch(self):
        # "per-request dispatch" must pay dispatch overhead per request:
        # scalar shards never coalesce even when max_batch allows it
        service = build_service(
            n=150, shards=1, seed=6, dispatch="scalar", max_batch=32,
            max_queue=10_000,
        )
        drive(service, rate=5.0, total=100, seed=6)
        assert service.metrics.completed == 100
        assert all(r.batch_size == 1 for r in service.completed)
        assert service.shards[0].batches_served == 100

    def test_keep_responses_false_bounds_memory(self):
        service = build_service(
            n=150, shards=1, seed=6, max_queue=8, keep_responses=False,
        )
        drive(service, rate=50.0, total=400, seed=6)
        assert service.responses == []  # nothing retained...
        m = service.metrics
        assert m.rejected > 0
        assert m.accepted + m.rejected == 400  # ...but everything counted
        assert m.completed == m.accepted

    def test_batch_amortizes_dispatch_overhead(self):
        # same workload, same substrates: micro-batch must spend fewer
        # dispatches (batches) than per-request dispatch
        def batches(dispatch, max_batch):
            service = build_service(
                n=150, shards=1, seed=9, dispatch=dispatch, max_batch=max_batch,
                max_queue=10_000, max_wait=2.0,
            )
            drive(service, rate=5.0, total=300, seed=9)
            assert service.metrics.completed == 300
            return sum(s["batches"] for s in service.summary()["shards"].values())

        assert batches("batch", 32) < batches("scalar", 1)


class TestSubstrates:
    def test_mixed_ideal_and_chord_serve_together(self):
        service = build_service(
            n=24, shards=2, substrate="mixed", seed=5, chord_m=16,
            max_batch=8, max_queue=10_000,
        )
        drive(service, rate=0.5, total=80, seed=5)
        assert service.metrics.completed == 80
        # round-robin: both the ideal and the chord shard served half
        assert service.metrics.shard_completed(0) == 40
        assert service.metrics.shard_completed(1) == 40

    def test_explicit_substrates_accepted(self):
        import random

        subs = [IdealDHT.random(64, random.Random(1)) for _ in range(3)]
        service = SamplingService(subs, seed=3, max_queue=1000)
        drive(service, rate=2.0, total=90, seed=3)
        assert service.metrics.completed == 90
        assert {r.shard_id for r in service.completed} == {0, 1, 2}


class TestSummary:
    def test_summary_shape(self):
        service = build_service(n=100, shards=2, seed=1, max_queue=1000)
        drive(service, rate=2.0, total=120, seed=1)
        s = service.summary()
        assert s["completed"] == 120
        for name in ("queue_latency", "service_latency", "total_latency"):
            lat = s["latency"][name]
            assert lat["count"] == 120
            assert lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]
        assert s["throughput"] == pytest.approx(120 / s["elapsed"])
        assert set(s["shards"]) == {0, 1}

    def test_latency_decomposition(self):
        service = build_service(n=100, shards=1, seed=1, max_queue=1000)
        drive(service, rate=2.0, total=50, seed=1)
        for r in service.completed:
            assert r.total_latency == pytest.approx(r.queue_latency + r.service_latency)
            assert r.queue_latency >= 0.0
            assert r.service_latency > 0.0  # dispatch overhead is never free
