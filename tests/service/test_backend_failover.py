"""Health-aware routing and retry against *real* substrate liveness models.

The scripted-dispatch tests (``test_churn_service.py``) pin the shard
worker's failure state machine in isolation; these tests re-verify the
same behaviours -- dispatch failure detection, health flips, router
shedding, explicit FAILED termination, recovery after repair -- with
live message-level substrates underneath, parametrized over both
overlay families.  Chord and Kademlia fail differently (routing holes
in a successor ring vs truncated XOR censuses and stale buckets), and
the serving layer must be indifferent to which one is burning.
"""

from __future__ import annotations

import random

import pytest

from repro.core.engine import BatchSampler
from repro.dht.chord.network import ChordNetwork
from repro.dht.kademlia.network import KademliaNetwork
from repro.service.batching import ShardWorker
from repro.service.core import SamplingService, build_load, build_service
from repro.service.dispatch import BatchDispatch
from repro.service.metrics import ServiceMetrics
from repro.service.request import RequestStatus, SampleRequest
from repro.service.router import ShardRouter
from repro.sim.kernel import Simulator

BACKENDS = ("chord", "kademlia")


def make_network(backend: str, n: int, seed: int, sim=None):
    rng = random.Random(seed)
    if backend == "chord":
        return ChordNetwork.build(n, m=16, rng=rng, sim=sim)
    return KademliaNetwork.build(n, m=16, k=6, rng=rng, sim=sim)


def crash_to_single_survivor(net) -> int:
    """Crash every node except the adapters' default entry (the min id)."""
    survivor = min(net.nodes)
    for node_id in [i for i in net.nodes if i != survivor]:
        net.crash_node(node_id)
    return survivor


@pytest.fixture(params=BACKENDS)
def backend(request) -> str:
    return request.param


class TestServingOnLiveBackends:
    def test_factory_service_serves_all_requests(self, backend):
        service = build_service(
            n=32, shards=2, substrate=backend, seed=3, chord_m=16,
            kad_bits=16, kad_k=6, max_batch=8, max_wait=1.0,
        )
        build_load(service, rate=2.0, total=40, seed=3).start()
        service.run()
        summary = service.summary()
        assert summary["completed"] == 40
        assert summary["failed"] == 0
        shards_used = {r.shard_id for r in service.completed}
        assert shards_used == {0, 1}

    def test_completed_peers_are_live_ring_members(self, backend):
        net = make_network(backend, 24, seed=4)
        service = SamplingService(
            [net.dht()], seed=4, max_batch=4, max_wait=1.0
        )
        for _ in range(12):
            service.submit()
        service.run()
        live = set(net.nodes)
        assert [r.status for r in service.responses] == [RequestStatus.OK] * 12
        assert all(r.peer.peer_id in live for r in service.completed)


def make_worker_on(net, *, seed: int, max_retries: int = 1, max_trials: int = 2):
    """A shard worker whose dispatch runs a real engine over ``net``.

    Build this while the overlay is *healthy* (Estimate-n runs at
    construction, like the service factory does), then crash the
    overlay.  The default ``max_trials=2`` keeps the rejection budget
    tiny so a substrate crashed down to one self-looping survivor
    exhausts it immediately (every walk laps the circle without hitting
    an assigned interval), surfacing the real SamplingError ->
    DispatchError churn path; recovery tests pass a budget large enough
    for healthy serving instead.
    """
    sim = Simulator()
    dht = net.dht()
    sampler = BatchSampler(dht, rng=random.Random(seed), max_trials=max_trials)
    metrics = ServiceMetrics(1)
    sink: list = []
    worker = ShardWorker(
        0,
        sim,
        BatchDispatch(sampler),
        metrics=metrics,
        sink=sink.append,
        max_batch=4,
        max_wait=1.0,
        max_retries=max_retries,
        retry_backoff=2.0,
    )
    return sim, worker, metrics, sink


def offer(worker, sim, count):
    for i in range(count):
        worker.offer(SampleRequest(request_id=i, arrival_time=sim.now))


class TestRealDispatchFailures:
    def test_crashed_substrate_fails_batch_explicitly(self, backend):
        net = make_network(backend, 24, seed=5)
        sim, worker, metrics, sink = make_worker_on(net, seed=5)
        crash_to_single_survivor(net)
        offer(worker, sim, 4)
        sim.run()
        # the real substrate failure surfaced, was retried, then failed
        assert metrics.dispatch_failures >= 1
        assert [r.status for r in sink] == [RequestStatus.FAILED] * 4
        assert all(r.peer is None for r in sink)
        assert worker.failed_requests == 4

    def test_failure_marks_shard_unhealthy_and_router_sheds(self, backend):
        net = make_network(backend, 24, seed=6)
        sim, sick, metrics, sink = make_worker_on(net, seed=6, max_retries=0)
        crash_to_single_survivor(net)
        offer(sick, sim, 4)
        sim.run(until=1.5)  # failure processed; re-admission probe not yet due
        assert not sick.healthy

        healthy_net = make_network(backend, 24, seed=7)
        _, healthy, _, _ = make_worker_on(healthy_net, seed=7)
        healthy.shard_id = 1
        router = ShardRouter([sick, healthy], policy="round-robin")
        picks = {
            router.route(SampleRequest(request_id=i, arrival_time=0.0)).shard_id
            for i in range(4)
        }
        assert picks == {1}

    def test_retry_refresh_recovers_against_shrunken_population(self, backend):
        # A budget large enough for healthy serving: the crash makes the
        # *stale estimate* the failure (walks lap a nearly-empty circle),
        # and the worker's refresh-between-retries is what must fix it.
        net = make_network(backend, 24, seed=8)
        sim, worker, metrics, sink = make_worker_on(net, seed=8, max_trials=200)
        survivor = crash_to_single_survivor(net)
        offer(worker, sim, 4)
        sim.run()
        assert metrics.dispatch_failures >= 1  # the stale-params dispatch died
        # refresh re-estimated against the shrunken population and the
        # retried batch served from the survivor
        assert [r.status for r in sink] == [RequestStatus.OK] * 4
        assert all(r.peer.peer_id == survivor for r in sink)
        assert worker.healthy

        # repopulate and converge the overlay: serving follows the ring
        for _ in range(20):
            net.join_node()
        net.run_stabilization(6)
        offer(worker, sim, 4)
        sim.run()
        live = set(net.nodes)
        served = sink[4:]
        assert [r.status for r in served] == [RequestStatus.OK] * 4
        assert all(r.peer.peer_id in live for r in served)
