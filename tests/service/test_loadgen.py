"""Open-loop load generator tests."""

from __future__ import annotations

import random

import pytest

from repro.service.loadgen import LoadGenerator
from repro.sim.kernel import Simulator


def collect_arrivals(rate: float, total: int, seed: int = 1) -> list[float]:
    sim = Simulator()
    times: list[float] = []
    gen = LoadGenerator(
        sim, lambda: times.append(sim.now), rate=rate, total=total,
        rng=random.Random(seed),
    )
    gen.start()
    sim.run()
    assert gen.done and gen.submitted == total
    return times


class TestLoadGenerator:
    def test_emits_exactly_total(self):
        assert len(collect_arrivals(rate=2.0, total=50)) == 50

    def test_arrivals_strictly_ordered(self):
        times = collect_arrivals(rate=5.0, total=200)
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_mean_interarrival_matches_rate(self):
        times = collect_arrivals(rate=4.0, total=4000)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert sum(gaps) / len(gaps) == pytest.approx(1.0 / 4.0, rel=0.1)

    def test_open_loop_ignores_service_speed(self):
        # arrivals depend only on the rng stream, never on the consumer
        assert collect_arrivals(3.0, 100, seed=9) == collect_arrivals(3.0, 100, seed=9)

    def test_zero_total_schedules_nothing(self):
        sim = Simulator()
        gen = LoadGenerator(sim, lambda: None, rate=1.0, total=0, rng=random.Random(0))
        gen.start()
        assert sim.pending == 0 and gen.done

    def test_start_twice_raises(self):
        sim = Simulator()
        gen = LoadGenerator(sim, lambda: None, rate=1.0, total=1, rng=random.Random(0))
        gen.start()
        with pytest.raises(RuntimeError):
            gen.start()

    def test_validates_parameters(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            LoadGenerator(sim, lambda: None, rate=0.0, total=1)
        with pytest.raises(ValueError):
            LoadGenerator(sim, lambda: None, rate=1.0, total=-1)
