"""Open-loop load generator tests."""

from __future__ import annotations

import random

import pytest

from repro.service.loadgen import LoadGenerator
from repro.sim.kernel import Simulator


def collect_arrivals(rate: float, total: int, seed: int = 1) -> list[float]:
    sim = Simulator()
    times: list[float] = []
    gen = LoadGenerator(
        sim, lambda: times.append(sim.now), rate=rate, total=total,
        rng=random.Random(seed),
    )
    gen.start()
    sim.run()
    assert gen.done and gen.submitted == total
    return times


class TestLoadGenerator:
    def test_emits_exactly_total(self):
        assert len(collect_arrivals(rate=2.0, total=50)) == 50

    def test_arrivals_strictly_ordered(self):
        times = collect_arrivals(rate=5.0, total=200)
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_mean_interarrival_matches_rate(self):
        times = collect_arrivals(rate=4.0, total=4000)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert sum(gaps) / len(gaps) == pytest.approx(1.0 / 4.0, rel=0.1)

    def test_open_loop_ignores_service_speed(self):
        # arrivals depend only on the rng stream, never on the consumer
        assert collect_arrivals(3.0, 100, seed=9) == collect_arrivals(3.0, 100, seed=9)

    def test_zero_total_schedules_nothing(self):
        sim = Simulator()
        gen = LoadGenerator(sim, lambda: None, rate=1.0, total=0, rng=random.Random(0))
        gen.start()
        assert sim.pending == 0 and gen.done

    def test_start_twice_raises(self):
        sim = Simulator()
        gen = LoadGenerator(sim, lambda: None, rate=1.0, total=1, rng=random.Random(0))
        gen.start()
        with pytest.raises(RuntimeError):
            gen.start()

    def test_validates_parameters(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            LoadGenerator(sim, lambda: None, rate=0.0, total=1)
        with pytest.raises(ValueError):
            LoadGenerator(sim, lambda: None, rate=1.0, total=-1)
        with pytest.raises(ValueError):
            LoadGenerator(sim, lambda: None, rate=1.0, total=1, idle_poll=0.0)


class _FixedRate:
    """A shape pinning the modulated rate, including zero and negative."""

    def __init__(self, rate):
        self._rate = rate

    def rate_at(self, t):
        return self._rate


class TestShapedEdgeCases:
    """Regression tests for the rate-0 / negative-rate bug class.

    A modulated rate of zero used to reach ``expovariate(0)``
    (ZeroDivisionError) and a negative rate produced negative gaps --
    arrivals scheduled into the simulator's past.  Both must instead
    become idle polls that move time strictly forward.
    """

    def _shaped(self, shape, total=5, idle_poll=1.0):
        sim = Simulator()
        times: list[float] = []
        gen = LoadGenerator(
            sim, lambda: times.append(sim.now), rate=1.0, total=total,
            rng=random.Random(1), shape=shape, idle_poll=idle_poll,
        )
        gen.start()
        return sim, gen, times

    def test_rate_zero_does_not_divide_by_zero(self):
        sim, gen, times = self._shaped(_FixedRate(0.0))
        for _ in range(50):  # an all-idle shape polls forever; step a bounded slice
            sim.step()
        assert gen.submitted == 0
        assert sim.now == pytest.approx(50.0)  # idle polls advance the clock

    def test_negative_rate_never_schedules_into_the_past(self):
        sim, gen, times = self._shaped(_FixedRate(-3.0))
        for _ in range(50):
            sim.step()
        assert gen.submitted == 0
        assert sim.now > 0.0

    def test_idle_interval_then_recovery(self):
        from repro.service.shapes import FlashCrowdShape

        # Zero base outside the burst is forbidden by the shape's own
        # validation, so model an idle lead-in with a deep diurnal trough.
        from repro.service.shapes import DiurnalShape

        shape = DiurnalShape(base=1.0, amplitude=1.0, period=40.0)
        sim, gen, times = self._shaped(shape, total=20)
        sim.run()
        assert gen.submitted == 20
        assert all(a < b for a, b in zip(times, times[1:]))
        assert all(t >= 0.0 for t in times)
        assert isinstance(FlashCrowdShape(base=1.0).rate_at(0.0), float)

    def test_stop_during_idle_poll_halts(self):
        sim, gen, times = self._shaped(_FixedRate(0.0))
        sim.step()
        gen.stop()
        sim.run()
        assert gen.done and gen.submitted == 0

    def test_unshaped_path_is_bit_identical_to_legacy(self):
        # shape=None must reproduce the exact historical draw sequence.
        legacy = collect_arrivals(rate=3.0, total=100, seed=4)
        sim = Simulator()
        times: list[float] = []
        gen = LoadGenerator(
            sim, lambda: times.append(sim.now), rate=3.0, total=100,
            rng=random.Random(4), shape=None,
        )
        gen.start()
        sim.run()
        assert times == legacy

    def test_burst_modulation_raises_arrival_density(self):
        from repro.service.shapes import FlashCrowdShape

        shape = FlashCrowdShape(base=0.5, multiplier=20.0, start=10.0, duration=10.0)
        sim, gen, times = self._shaped(shape, total=110)
        sim.run()
        in_burst = sum(1 for t in times if 10.0 <= t < 20.0)
        assert in_burst > len(times) / 2  # the burst dominates arrivals

    def test_keys_are_passed_to_submit(self):
        sim = Simulator()
        seen: list[int] = []
        gen = LoadGenerator(
            sim, seen.append, rate=5.0, total=30,
            rng=random.Random(2), keys=iter(range(100)).__next__,
        )
        gen.start()
        sim.run()
        assert seen == list(range(30))
