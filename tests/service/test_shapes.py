"""Workload shape and key-skew tests (diurnal, flash crowd, Zipf keys)."""

from __future__ import annotations

import math
import random
from collections import Counter

import pytest

from repro.service.shapes import (
    LOAD_SHAPES,
    DiurnalShape,
    FlashCrowdShape,
    ZipfKeys,
    make_shape,
)


class TestDiurnalShape:
    def test_peaks_and_troughs(self):
        shape = DiurnalShape(base=4.0, amplitude=0.5, period=100.0)
        assert shape.rate_at(25.0) == pytest.approx(6.0)  # peak: base*(1+A)
        assert shape.rate_at(75.0) == pytest.approx(2.0)  # trough: base*(1-A)
        assert shape.rate_at(0.0) == pytest.approx(4.0)

    def test_deep_amplitude_clamps_at_zero(self):
        shape = DiurnalShape(base=2.0, amplitude=1.5, period=100.0)
        assert shape.rate_at(75.0) == 0.0  # would be negative unclamped
        assert shape.rate_at(25.0) == pytest.approx(5.0)

    def test_periodicity(self):
        shape = DiurnalShape(base=3.0, amplitude=0.4, period=50.0)
        for t in (0.0, 13.7, 42.0):
            assert shape.rate_at(t) == pytest.approx(shape.rate_at(t + 50.0))

    def test_validates(self):
        with pytest.raises(ValueError):
            DiurnalShape(base=-1.0)
        with pytest.raises(ValueError):
            DiurnalShape(base=1.0, amplitude=-0.1)
        with pytest.raises(ValueError):
            DiurnalShape(base=1.0, period=0.0)


class TestFlashCrowdShape:
    def test_burst_window(self):
        shape = FlashCrowdShape(base=1.0, multiplier=8.0, start=50.0, duration=30.0)
        assert shape.rate_at(49.9) == 1.0
        assert shape.rate_at(50.0) == 8.0
        assert shape.rate_at(79.9) == 8.0
        assert shape.rate_at(80.0) == 1.0

    def test_validates(self):
        with pytest.raises(ValueError):
            FlashCrowdShape(base=1.0, multiplier=-1.0)
        with pytest.raises(ValueError):
            FlashCrowdShape(base=1.0, duration=-1.0)


class TestMakeShape:
    def test_constant_returns_none(self):
        # None keeps the LoadGenerator on its legacy draw-identical path.
        assert make_shape("constant", 2.0) is None

    def test_known_names(self):
        assert set(LOAD_SHAPES) == {"constant", "diurnal", "flash"}
        assert isinstance(make_shape("diurnal", 2.0), DiurnalShape)
        assert isinstance(make_shape("flash", 2.0), FlashCrowdShape)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_shape("sawtooth", 2.0)


class TestZipfKeys:
    def test_keys_in_range_and_deterministic(self):
        a = ZipfKeys(256, 1.1, random.Random(3))
        b = ZipfKeys(256, 1.1, random.Random(3))
        draws = [a() for _ in range(500)]
        assert all(0 <= k < 256 for k in draws)
        assert draws == [b() for _ in range(500)]

    def test_skew_concentrates_head(self):
        keys = ZipfKeys(1024, 1.2, random.Random(0))
        counts = Counter(keys() for _ in range(20_000))
        head = sum(counts[k] for k in range(10))
        assert head / 20_000 > 0.5  # top-10 keys dominate under Zipf 1.2

    def test_zero_exponent_is_uniform_ish(self):
        keys = ZipfKeys(64, 0.0, random.Random(0))
        counts = Counter(keys() for _ in range(64_000))
        assert max(counts.values()) / min(counts.values()) < 1.5

    def test_cdf_is_normalised(self):
        keys = ZipfKeys(100, 1.5, random.Random(0))
        assert math.isclose(keys._cdf[-1], 1.0)

    def test_validates(self):
        with pytest.raises(ValueError):
            ZipfKeys(0, 1.0, random.Random(0))
        with pytest.raises(ValueError):
            ZipfKeys(16, -0.5, random.Random(0))
