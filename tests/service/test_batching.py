"""Unit tests for the micro-batching shard worker's dispatch rule."""

from __future__ import annotations

import pytest

from repro.dht.api import CostSnapshot, PeerRef
from repro.service.batching import ShardWorker
from repro.service.dispatch import Execution, ServiceTimeModel
from repro.service.request import RequestStatus, SampleRequest
from repro.sim.kernel import Simulator


class FakeDispatch:
    """Returns synthetic peers; records the batch sizes it was asked for."""

    def __init__(self, latency_per_sample: float = 100.0):
        self.calls: list[int] = []
        self._latency = latency_per_sample

    def execute(self, k: int) -> Execution:
        self.calls.append(k)
        peers = tuple(PeerRef(peer_id=i, point=(i + 1) / (k + 1)) for i in range(k))
        return Execution(
            peers=peers, cost=CostSnapshot(latency=k * self._latency), trials=k
        )


def make_worker(sim, dispatch, **kwargs):
    responses = []
    kwargs.setdefault("time_model", ServiceTimeModel(dispatch_overhead=1.0, time_per_latency=0.001))
    worker = ShardWorker(0, sim, dispatch, sink=responses.append, **kwargs)
    return worker, responses


def submit(sim, worker, n, request_id_base=0):
    for i in range(n):
        worker.offer(SampleRequest(request_id=request_id_base + i, arrival_time=sim.now))


class TestDispatchRule:
    def test_flushes_when_batch_fills(self):
        sim = Simulator()
        dispatch = FakeDispatch()
        worker, responses = make_worker(sim, dispatch, max_batch=4, max_wait=100.0)
        submit(sim, worker, 4)
        assert dispatch.calls == [4]  # flushed immediately, long before max_wait
        sim.run()
        assert [r.request_id for r in responses] == [0, 1, 2, 3]
        assert all(r.batch_size == 4 for r in responses)

    def test_flushes_on_age_when_batch_underfull(self):
        sim = Simulator()
        dispatch = FakeDispatch()
        worker, responses = make_worker(sim, dispatch, max_batch=64, max_wait=5.0)
        submit(sim, worker, 3)
        assert dispatch.calls == []  # waiting for batchmates
        sim.run()
        assert dispatch.calls == [3]
        assert all(r.queue_latency == pytest.approx(5.0) for r in responses)

    def test_single_server_defers_next_flush_until_completion(self):
        sim = Simulator()
        dispatch = FakeDispatch(latency_per_sample=1000.0)  # service_time = 1 + k
        worker, responses = make_worker(sim, dispatch, max_batch=2, max_wait=50.0)
        submit(sim, worker, 2)  # flush #1 at t=0, completes at t=3
        submit(sim, worker, 4)  # arrives while busy: must wait, then flush 2+2
        assert dispatch.calls == [2]
        assert worker.busy and worker.queue_depth == 4
        sim.run()
        assert dispatch.calls == [2, 2, 2]
        assert len(responses) == 6

    def test_queue_latency_measures_wait_not_service(self):
        sim = Simulator()
        dispatch = FakeDispatch(latency_per_sample=1000.0)
        worker, responses = make_worker(sim, dispatch, max_batch=2, max_wait=50.0)
        submit(sim, worker, 4)
        sim.run()
        first, second = responses[:2], responses[2:]
        assert all(r.queue_latency == 0.0 for r in first)
        # the second batch waited exactly the first batch's service time
        assert all(r.queue_latency == pytest.approx(3.0) for r in second)
        assert all(r.service_latency == pytest.approx(3.0) for r in responses)
        assert all(
            r.completion_time == r.queue_latency + r.service_latency for r in responses
        )

    def test_timer_cancelled_by_full_flush(self):
        sim = Simulator()
        dispatch = FakeDispatch()
        worker, _ = make_worker(sim, dispatch, max_batch=2, max_wait=10.0)
        submit(sim, worker, 1)  # arms the age timer
        submit(sim, worker, 1, request_id_base=1)  # fills the batch -> flush now
        assert dispatch.calls == [2]
        sim.run()
        assert dispatch.calls == [2]  # the stale timer must not double-flush

    def test_status_and_shard_stamps(self):
        sim = Simulator()
        worker, responses = make_worker(sim, FakeDispatch(), max_batch=1, max_wait=0.0)
        submit(sim, worker, 1)
        sim.run()
        (r,) = responses
        assert r.status is RequestStatus.OK
        assert r.shard_id == 0
        assert r.peer is not None

    def test_load_signal_counts_queue_and_in_flight(self):
        sim = Simulator()
        worker, _ = make_worker(sim, FakeDispatch(), max_batch=2, max_wait=50.0)
        submit(sim, worker, 3)
        assert worker.in_flight == 2 and worker.queue_depth == 1
        assert worker.load == 3
        sim.run()
        assert worker.load == 0

    def test_validates_parameters(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            ShardWorker(0, sim, FakeDispatch(), max_batch=0)
        with pytest.raises(ValueError):
            ShardWorker(0, sim, FakeDispatch(), max_wait=-1.0)


class TestServiceTimeModel:
    def test_overhead_charged_per_dispatch(self):
        # a coalesced batch pays overhead once; per-request serving of
        # the same k requests pays it k times, whatever the batch size
        tm = ServiceTimeModel(dispatch_overhead=2.0, time_per_latency=0.0)
        batch = Execution(peers=(), cost=CostSnapshot(), trials=0, dispatches=1)
        scalar = Execution(peers=(), cost=CostSnapshot(), trials=0, dispatches=8)
        assert tm.service_time(batch) == 2.0
        assert tm.service_time(scalar) == 16.0

    def test_latency_scaling(self):
        tm = ServiceTimeModel(dispatch_overhead=1.0, time_per_latency=0.5)
        ex = Execution(peers=(), cost=CostSnapshot(latency=10.0), trials=0)
        assert tm.service_time(ex) == pytest.approx(6.0)
