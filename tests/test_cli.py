"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parses_each_subcommand(self):
        parser = build_parser()
        assert parser.parse_args(["estimate", "--n", "50"]).command == "estimate"
        assert parser.parse_args(["sample"]).command == "sample"
        assert parser.parse_args(["uniformity"]).command == "uniformity"
        assert parser.parse_args(["chord", "--m", "16"]).command == "chord"
        assert parser.parse_args(["serve", "--rate", "2.0"]).command == "serve"

    def test_sample_batch_flag(self):
        args = build_parser().parse_args(["sample", "--batch"])
        assert args.batch is True
        assert build_parser().parse_args(["sample"]).batch is False

    def test_global_seed(self):
        args = build_parser().parse_args(["--seed", "9", "estimate"])
        assert args.seed == 9


class TestCommands:
    def test_estimate_reports_ratio(self, capsys):
        assert main(["--seed", "1", "estimate", "--n", "500"]) == 0
        out = capsys.readouterr().out
        assert "n_hat" in out
        assert "next-calls" in out

    def test_estimate_rejects_bad_n(self, capsys):
        assert main(["estimate", "--n", "0"]) == 2

    def test_estimate_median_mode(self, capsys):
        assert main(["--seed", "6", "estimate", "--n", "500", "--vantages", "3"]) == 0
        assert "n_hat" in capsys.readouterr().out

    def test_estimate_rejects_bad_vantages(self, capsys):
        assert main(["estimate", "--vantages", "0"]) == 2

    def test_sample_prints_each_draw(self, capsys):
        assert main(["--seed", "2", "sample", "--n", "200", "--samples", "3"]) == 0
        out = capsys.readouterr().out
        assert out.count("sample ") == 3
        assert "lambda=" in out

    def test_sample_rejects_bad_args(self):
        assert main(["sample", "--n", "0"]) == 2
        assert main(["sample", "--samples", "0"]) == 2

    def test_uniformity_compares_samplers(self, capsys):
        assert main(["--seed", "3", "uniformity", "--n", "32", "--draws", "2000"]) == 0
        out = capsys.readouterr().out
        assert "king-saia" in out
        assert "naive h(U)" in out

    def test_uniformity_rejects_insufficient_draws(self):
        assert main(["uniformity", "--n", "100", "--draws", "10"]) == 2

    def test_chord_runs_pipeline(self, capsys):
        assert main(["--seed", "4", "chord", "--n", "24", "--m", "16",
                     "--samples", "2"]) == 0
        out = capsys.readouterr().out
        assert "ring correct=True" in out
        assert "mean messages/sample" in out

    def test_chord_rejects_small_id_space(self):
        assert main(["chord", "--n", "100", "--m", "4"]) == 2

    def test_sample_batch_mode_reports_totals(self, capsys):
        assert main(["--seed", "2", "sample", "--n", "300", "--samples", "40",
                     "--batch"]) == 0
        out = capsys.readouterr().out
        assert "mode=batch" in out
        assert "batch totals:" in out
        assert "rounds" in out
        assert "... 30 more" in out  # only the first 10 draws are listed

    def test_sample_batch_mode_reproducible(self, capsys):
        main(["--seed", "8", "sample", "--n", "200", "--samples", "20", "--batch"])
        first = capsys.readouterr().out
        main(["--seed", "8", "sample", "--n", "200", "--samples", "20", "--batch"])
        assert first == capsys.readouterr().out

    def test_serve_reports_latency_and_shards(self, capsys):
        assert main(["--seed", "6", "serve", "--n", "300", "--rate", "1.0",
                     "--shards", "2", "--requests", "200"]) == 0
        out = capsys.readouterr().out
        assert "completed 200" in out
        assert "queue_latency" in out and "service_latency" in out
        assert "shard 0:" in out and "shard 1:" in out

    def test_serve_scalar_dispatch_and_policy(self, capsys):
        assert main(["--seed", "6", "serve", "--n", "200", "--rate", "0.5",
                     "--requests", "60", "--dispatch", "scalar",
                     "--policy", "least-loaded", "--max-batch", "1"]) == 0
        assert "dispatch=scalar" in capsys.readouterr().out

    def test_serve_rejects_bad_args(self):
        assert main(["serve", "--n", "0"]) == 2
        assert main(["serve", "--rate", "0"]) == 2
        assert main(["serve", "--requests", "0"]) == 2
        assert main(["serve", "--substrate", "chord", "--n", "100000",
                     "--chord-m", "10"]) == 2

    def test_serve_reproducible_given_seed(self, capsys):
        argv = ["--seed", "11", "serve", "--n", "200", "--rate", "1.5",
                "--requests", "150", "--max-queue", "20"]
        main(argv)
        first = capsys.readouterr().out
        main(argv)
        assert first == capsys.readouterr().out

    def test_reproducible_given_seed(self, capsys):
        main(["--seed", "5", "sample", "--n", "100", "--samples", "2"])
        first = capsys.readouterr().out
        main(["--seed", "5", "sample", "--n", "100", "--samples", "2"])
        second = capsys.readouterr().out
        assert first == second

    def test_scenario_list_names_presets(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("static", "smoke", "moderate", "crash-heavy"):
            assert name in out

    def test_scenario_run_smoke(self, capsys, tmp_path):
        out_path = tmp_path / "scenario.json"
        assert main(["scenario", "run", "--preset", "smoke",
                     "--requests", "40", "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "ring ok" in out
        assert out_path.exists()

    def test_scenario_run_rejects_bad_overrides(self, capsys):
        assert main(["scenario", "run", "--preset", "smoke",
                     "--crash-fraction", "2.0"]) == 2

    def test_scenario_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario"])

    def test_scenario_list_names_fault_presets(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        assert "mass-failure" in out
        assert "partition-heal" in out

    def test_scenario_run_mass_failure(self, capsys, tmp_path):
        out_path = tmp_path / "faults.json"
        assert main(["scenario", "run", "--preset", "mass-failure",
                     "--n", "200", "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "recovered" in out
        assert out_path.exists()

    def test_scenario_fault_preset_rejects_churn_flags(self, capsys):
        assert main(["scenario", "run", "--preset", "mass-failure",
                     "--n", "200", "--rate", "2.0"]) == 2

    def test_faults_list_names_injectors(self, capsys):
        assert main(["faults", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("mass-kill", "partition", "grey", "loss-burst"):
            assert name in out

    def test_faults_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["faults"])

    def test_bench_chord_batch_runs_and_writes(self, capsys, tmp_path):
        out_path = tmp_path / "BENCH_chord_batch.json"
        assert main(["bench", "chord-batch", "--quick",
                     "--sizes", "256", "--k", "120", "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "lockstep" in out
        assert "static speedup" in out
        assert out_path.exists()

    def test_bench_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench"])


class TestBackendSwitch:
    """The --backend substrate switch across subcommands."""

    def test_sample_on_kademlia_backend(self, capsys):
        assert main(["--seed", "3", "sample", "--n", "64",
                     "--samples", "2", "--backend", "kademlia"]) == 0
        out = capsys.readouterr().out
        assert "backend=kademlia" in out
        assert "sample 1:" in out

    def test_sample_on_chord_backend(self, capsys):
        assert main(["--seed", "3", "sample", "--n", "48",
                     "--samples", "2", "--backend", "chord"]) == 0
        assert "backend=chord" in capsys.readouterr().out

    def test_sample_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sample", "--backend", "pastry"])

    def test_serve_accepts_backend_alias_for_substrate(self, capsys):
        assert main(["serve", "--backend", "kademlia", "--n", "32",
                     "--requests", "20", "--rate", "2.0",
                     "--kad-bits", "16", "--kad-k", "6"]) == 0
        assert "substrate=kademlia" in capsys.readouterr().out

    def test_scenario_run_with_kademlia_backend(self, capsys):
        assert main(["scenario", "run", "--preset", "smoke",
                     "--backend", "kademlia", "--requests", "30"]) == 0
        assert "ring ok" in capsys.readouterr().out

    def test_bench_backends_runs_and_writes(self, capsys, tmp_path):
        out_path = tmp_path / "BENCH_backends.json"
        assert main(["bench", "backends", "--quick", "--sizes", "128",
                     "--samples", "25", "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "kademlia" in out and "chord" in out
        assert out_path.exists()
