"""The bench regression guard: metric extraction, tolerance, verdicts."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = (
    Path(__file__).resolve().parents[2] / "benchmarks" / "check_regression.py"
)
_spec = importlib.util.spec_from_file_location("check_regression", _SCRIPT)
check_regression = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_regression)


def chord_record(speedup, identical=True, phase="static", n=1000):
    return {
        "benchmark": "chord_batch",
        "results": [
            {
                "n": n,
                "phase": phase,
                "speedup": speedup,
                "identical_peers": identical,
                "identical_messages": identical,
                "identical_hops": identical,
            }
        ],
    }


class TestCompare:
    def test_within_tolerance_passes(self):
        rows = check_regression.compare(
            chord_record(4.0),
            chord_record(8.0),
            check_regression._metrics_chord_batch,
            tolerance=0.4,
        )
        speedups = [r for r in rows if r["metric"].endswith("speedup")]
        assert speedups and not any(r["regressed"] for r in speedups)

    def test_cliff_beyond_tolerance_is_flagged(self):
        rows = check_regression.compare(
            chord_record(2.0),
            chord_record(8.0),
            check_regression._metrics_chord_batch,
            tolerance=0.4,
        )
        assert any(r["regressed"] for r in rows if r["metric"].endswith("speedup"))

    def test_improvement_never_flags(self):
        rows = check_regression.compare(
            chord_record(50.0),
            chord_record(8.0),
            check_regression._metrics_chord_batch,
            tolerance=0.4,
        )
        assert not any(r["regressed"] for r in rows)

    def test_identity_flip_is_always_a_regression(self):
        rows = check_regression.compare(
            chord_record(100.0, identical=False),
            chord_record(8.0, identical=True),
            check_regression._metrics_chord_batch,
            tolerance=0.4,
        )
        flags = [r for r in rows if r["kind"] == "exact"]
        assert flags and all(r["regressed"] for r in flags)

    def test_disjoint_configurations_compare_nothing(self):
        rows = check_regression.compare(
            chord_record(4.0, n=1000),
            chord_record(8.0, n=100000),
            check_regression._metrics_chord_batch,
            tolerance=0.4,
        )
        assert rows == []

    def test_lower_is_better_direction(self):
        make = lambda inflation: {
            "scenarios": [
                {
                    "spec": {"name": "moderate"},
                    "ring_recovered": True,
                    "inflation": {"messages_per_sample": inflation},
                }
            ]
        }
        rows = check_regression.compare(
            make(9.0), make(2.0), check_regression._metrics_churn, tolerance=0.4
        )
        assert any(r["regressed"] for r in rows)
        rows = check_regression.compare(
            make(2.1), make(2.0), check_regression._metrics_churn, tolerance=0.4
        )
        assert not any(r["regressed"] for r in rows)


class TestMainEndToEnd:
    def test_baseline_dir_comparison(self, tmp_path, capsys):
        fresh, base = tmp_path / "fresh", tmp_path / "base"
        fresh.mkdir(), base.mkdir()
        (fresh / "BENCH_chord_batch.json").write_text(json.dumps(chord_record(6.0)))
        (base / "BENCH_chord_batch.json").write_text(json.dumps(chord_record(7.0)))
        rc = check_regression.main(
            [
                "--bench", "BENCH_chord_batch.json",
                "--fresh-dir", str(fresh),
                "--baseline-dir", str(base),
            ]
        )
        assert rc == 0
        assert "regression check passed" in capsys.readouterr().out

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        fresh, base = tmp_path / "fresh", tmp_path / "base"
        fresh.mkdir(), base.mkdir()
        (fresh / "BENCH_chord_batch.json").write_text(json.dumps(chord_record(1.0)))
        (base / "BENCH_chord_batch.json").write_text(json.dumps(chord_record(9.0)))
        rc = check_regression.main(
            [
                "--bench", "BENCH_chord_batch.json",
                "--fresh-dir", str(fresh),
                "--baseline-dir", str(base),
            ]
        )
        assert rc == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_missing_artifacts_pass_vacuously(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        rc = check_regression.main(
            [
                "--bench", "BENCH_chord_batch.json",
                "--fresh-dir", str(empty),
                "--baseline-dir", str(empty),
            ]
        )
        assert rc == 0
        assert "nothing compared" in capsys.readouterr().out

    def test_committed_repo_artifacts_parse(self):
        # every committed baseline must stay extractable, else the CI
        # guard silently compares nothing
        root = check_regression.ROOT
        for name, extractor in check_regression.EXTRACTORS.items():
            path = root / name
            if not path.exists():
                continue
            metrics = extractor(json.loads(path.read_text()))
            assert metrics, f"no metrics extracted from {name}"
