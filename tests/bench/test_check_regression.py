"""The bench regression guard: metric extraction, tolerance, verdicts."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

_SCRIPT = (
    Path(__file__).resolve().parents[2] / "benchmarks" / "check_regression.py"
)
_spec = importlib.util.spec_from_file_location("check_regression", _SCRIPT)
check_regression = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_regression)


def chord_record(speedup, identical=True, phase="static", n=1000):
    return {
        "benchmark": "chord_batch",
        "results": [
            {
                "n": n,
                "phase": phase,
                "speedup": speedup,
                "identical_peers": identical,
                "identical_messages": identical,
                "identical_hops": identical,
            }
        ],
    }


class TestCompare:
    def test_within_tolerance_passes(self):
        rows = check_regression.compare(
            chord_record(4.0),
            chord_record(8.0),
            check_regression._metrics_chord_batch,
            tolerance=0.4,
        )
        speedups = [r for r in rows if r["metric"].endswith("speedup")]
        assert speedups and not any(r["regressed"] for r in speedups)

    def test_cliff_beyond_tolerance_is_flagged(self):
        rows = check_regression.compare(
            chord_record(2.0),
            chord_record(8.0),
            check_regression._metrics_chord_batch,
            tolerance=0.4,
        )
        assert any(r["regressed"] for r in rows if r["metric"].endswith("speedup"))

    def test_improvement_never_flags(self):
        rows = check_regression.compare(
            chord_record(50.0),
            chord_record(8.0),
            check_regression._metrics_chord_batch,
            tolerance=0.4,
        )
        assert not any(r["regressed"] for r in rows)

    def test_identity_flip_is_always_a_regression(self):
        rows = check_regression.compare(
            chord_record(100.0, identical=False),
            chord_record(8.0, identical=True),
            check_regression._metrics_chord_batch,
            tolerance=0.4,
        )
        flags = [r for r in rows if r["kind"] == "exact"]
        assert flags and all(r["regressed"] for r in flags)

    def test_disjoint_configurations_compare_nothing(self):
        rows = check_regression.compare(
            chord_record(4.0, n=1000),
            chord_record(8.0, n=100000),
            check_regression._metrics_chord_batch,
            tolerance=0.4,
        )
        assert rows == []

    def test_lower_is_better_direction(self):
        def make(inflation):
            return {
                "scenarios": [
                    {
                        "spec": {"name": "moderate"},
                        "ring_recovered": True,
                        "inflation": {"messages_per_sample": inflation},
                    }
                ]
            }

        rows = check_regression.compare(
            make(9.0), make(2.0), check_regression._metrics_churn, tolerance=0.4
        )
        assert any(r["regressed"] for r in rows)
        rows = check_regression.compare(
            make(2.1), make(2.0), check_regression._metrics_churn, tolerance=0.4
        )
        assert not any(r["regressed"] for r in rows)


class TestMainEndToEnd:
    def test_baseline_dir_comparison(self, tmp_path, capsys):
        fresh, base = tmp_path / "fresh", tmp_path / "base"
        fresh.mkdir(), base.mkdir()
        (fresh / "BENCH_chord_batch.json").write_text(json.dumps(chord_record(6.0)))
        (base / "BENCH_chord_batch.json").write_text(json.dumps(chord_record(7.0)))
        rc = check_regression.main(
            [
                "--bench", "BENCH_chord_batch.json",
                "--fresh-dir", str(fresh),
                "--baseline-dir", str(base),
            ]
        )
        assert rc == 0
        assert "regression check passed" in capsys.readouterr().out

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        fresh, base = tmp_path / "fresh", tmp_path / "base"
        fresh.mkdir(), base.mkdir()
        (fresh / "BENCH_chord_batch.json").write_text(json.dumps(chord_record(1.0)))
        (base / "BENCH_chord_batch.json").write_text(json.dumps(chord_record(9.0)))
        rc = check_regression.main(
            [
                "--bench", "BENCH_chord_batch.json",
                "--fresh-dir", str(fresh),
                "--baseline-dir", str(base),
            ]
        )
        assert rc == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_missing_fresh_artifacts_skip_by_default(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        rc = check_regression.main(
            [
                "--bench", "BENCH_chord_batch.json",
                "--fresh-dir", str(empty),
                "--baseline-dir", str(empty),
            ]
        )
        assert rc == 0
        assert "nothing compared" in capsys.readouterr().out

    def test_missing_committed_baseline_fails(self, tmp_path, capsys):
        # an absent committed BENCH_*.json used to read as a pass; it is
        # a hole in the guard and must exit non-zero
        fresh, base = tmp_path / "fresh", tmp_path / "base"
        fresh.mkdir(), base.mkdir()
        (fresh / "BENCH_chord_batch.json").write_text(json.dumps(chord_record(6.0)))
        rc = check_regression.main(
            [
                "--bench", "BENCH_chord_batch.json",
                "--fresh-dir", str(fresh),
                "--baseline-dir", str(base),
            ]
        )
        assert rc == 1
        assert "no committed baseline" in capsys.readouterr().err

    def test_strict_fails_on_missing_fresh_artifact(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        rc = check_regression.main(
            [
                "--strict",
                "--bench", "BENCH_chord_batch.json",
                "--fresh-dir", str(empty),
                "--baseline-dir", str(empty),
            ]
        )
        assert rc == 1
        assert "no fresh output" in capsys.readouterr().err

    def test_strict_fails_on_disjoint_configurations(self, tmp_path, capsys):
        fresh, base = tmp_path / "fresh", tmp_path / "base"
        fresh.mkdir(), base.mkdir()
        (fresh / "BENCH_chord_batch.json").write_text(
            json.dumps(chord_record(6.0, n=1000))
        )
        (base / "BENCH_chord_batch.json").write_text(
            json.dumps(chord_record(6.0, n=100000))
        )
        rc = check_regression.main(
            [
                "--strict",
                "--bench", "BENCH_chord_batch.json",
                "--fresh-dir", str(fresh),
                "--baseline-dir", str(base),
            ]
        )
        assert rc == 1
        assert "no comparable metrics" in capsys.readouterr().err

    def test_committed_repo_artifacts_parse(self):
        # every committed baseline must stay extractable, else the CI
        # guard silently compares nothing
        root = check_regression.ROOT
        for name, extractor in check_regression.EXTRACTORS.items():
            path = root / name
            if not path.exists():
                continue
            metrics = extractor(json.loads(path.read_text()))
            assert metrics, f"no metrics extracted from {name}"

    def test_every_known_artifact_has_a_committed_baseline(self):
        # the PR guard errors on fresh-without-baseline, so a bench
        # registered here must ship its baseline in the same change
        root = check_regression.ROOT
        for name in check_regression.EXTRACTORS:
            assert (root / name).exists(), f"{name} baseline not committed"


class TestBackendsExtractor:
    def test_metrics_per_backend_size_and_phase(self):
        record = {
            "results": [
                {
                    "backend": "chord", "n": 10000, "phase": "static",
                    "sustained_rps": 140.0, "msgs_per_sample": 4500.0,
                    "all_sampled_live": True,
                },
                {
                    "backend": "kademlia", "n": 10000, "phase": "churn",
                    "sustained_rps": 28.0, "msgs_per_sample": 4600.0,
                    "all_sampled_live": True,
                },
            ]
        }
        metrics = check_regression._metrics_backends(record)
        assert metrics["chord/n=10000/static/sustained_rps"] == (140.0, "higher-is-better")
        assert metrics["kademlia/n=10000/churn/msgs_per_sample"] == (4600.0, "lower-is-better")
        assert metrics["chord/n=10000/static/all_sampled_live"] == (True, "exact")
        # churn-phase dead draws are documented-acceptable (stale_trials
        # records them), so no exact invariant is registered there
        assert "kademlia/n=10000/churn/all_sampled_live" not in metrics
