"""Unit tests for the shared workload builders (previously only
exercised incidentally through the harness tests)."""

from __future__ import annotations

import pytest

from repro.bench.workloads import (
    make_chord_dht,
    make_ideal_dht,
    make_sampler,
    selection_counts,
)
from repro.core.sampler import RandomPeerSampler
from repro.dht.api import DHT, BulkDHT
from repro.dht.chord.network import ChordDHT
from repro.dht.ideal import IdealDHT


class TestMakeIdealDht:
    def test_size_and_type(self):
        dht = make_ideal_dht(100, seed=1)
        assert isinstance(dht, IdealDHT)
        assert isinstance(dht, DHT) and isinstance(dht, BulkDHT)
        assert len(dht) == 100

    def test_seed_determinism(self):
        a = make_ideal_dht(50, seed=3)
        b = make_ideal_dht(50, seed=3)
        assert list(a.points_array()) == list(b.points_array())

    def test_stream_independence(self):
        a = make_ideal_dht(50, seed=3, stream="ring")
        b = make_ideal_dht(50, seed=3, stream="other")
        assert list(a.points_array()) != list(b.points_array())


class TestMakeChordDht:
    def test_builds_correct_ring(self):
        dht = make_chord_dht(32, seed=2, m=16)
        assert isinstance(dht, ChordDHT)
        assert isinstance(dht, DHT)
        assert not isinstance(dht, BulkDHT)  # live Chord has no flat array
        assert dht._network.ring_is_correct()
        assert len(dht._network.nodes) == 32

    def test_seed_determinism(self):
        ids = lambda d: sorted(d._network.nodes)  # noqa: E731
        assert ids(make_chord_dht(24, seed=5, m=16)) == ids(make_chord_dht(24, seed=5, m=16))
        assert ids(make_chord_dht(24, seed=5, m=16)) != ids(make_chord_dht(24, seed=6, m=16))

    def test_lookup_mode_passthrough(self):
        dht = make_chord_dht(16, seed=1, m=16, lookup_mode="recursive")
        assert dht._lookup_mode == "recursive"

    def test_rejects_small_id_space(self):
        with pytest.raises(ValueError):
            make_chord_dht(100, seed=0, m=4)

    def test_sampler_runs_on_chord_workload(self):
        dht = make_chord_dht(24, seed=7, m=16)
        sampler = make_sampler(dht, seed=7)
        counts = selection_counts(sampler, draws=30)
        assert sum(counts.values()) == 30
        assert set(counts) <= set(dht._network.nodes)


class TestMakeSampler:
    def test_returns_configured_sampler(self):
        dht = make_ideal_dht(200, seed=4)
        sampler = make_sampler(dht, seed=4, n_hat=200.0)
        assert isinstance(sampler, RandomPeerSampler)
        assert sampler.params.n_hat == 200.0

    def test_kwargs_passthrough(self):
        dht = make_ideal_dht(50, seed=4)
        sampler = make_sampler(dht, seed=4, n_hat=50.0, max_trials=123)
        assert sampler._max_trials == 123

    def test_trial_stream_is_seeded(self):
        dht = make_ideal_dht(100, seed=9)
        a = make_sampler(dht, seed=9, n_hat=100.0).sample().peer_id
        dht2 = make_ideal_dht(100, seed=9)
        b = make_sampler(dht2, seed=9, n_hat=100.0).sample().peer_id
        assert a == b


class TestSelectionCounts:
    def test_tallies_every_draw(self):
        dht = make_ideal_dht(64, seed=11)
        sampler = make_sampler(dht, seed=11, n_hat=64.0)
        counts = selection_counts(sampler, draws=200)
        assert sum(counts.values()) == 200
        assert all(0 <= pid < 64 for pid in counts)

    def test_zero_draws(self):
        dht = make_ideal_dht(8, seed=1)
        sampler = make_sampler(dht, seed=1, n_hat=8.0)
        assert selection_counts(sampler, draws=0) == {}
