"""Tests for the benchmark harness utilities."""

from __future__ import annotations

import math

import pytest

from repro.bench.harness import (
    Table,
    fmt,
    geometric_mean,
    peak_rss_kb,
    sweep,
    time_call,
    time_call_rss,
    write_bench_json,
)
from repro.bench.workloads import make_ideal_dht, make_sampler, selection_counts


class TestFmt:
    def test_bool(self):
        assert fmt(True) == "yes"
        assert fmt(False) == "no"

    def test_int(self):
        assert fmt(42) == "42"

    def test_float_compact(self):
        assert fmt(0.5) == "0.5"
        assert fmt(0.0) == "0"

    def test_float_scientific_extremes(self):
        assert "e" in fmt(1e-9)
        assert "e" in fmt(1e7)

    def test_special_floats(self):
        assert fmt(math.inf) == "inf"
        assert fmt(math.nan) == "nan"

    def test_string_passthrough(self):
        assert fmt("abc") == "abc"


class TestTable:
    def test_row_arity_checked(self):
        t = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_render_contains_everything(self):
        t = Table("My Experiment", ["n", "value"])
        t.add_row(10, 0.5)
        t.add_row(20, 0.25)
        t.note("paper: Theta(1)")
        text = t.render()
        assert "My Experiment" in text
        assert "0.25" in text
        assert "paper: Theta(1)" in text

    def test_columns_aligned(self):
        t = Table("t", ["col", "x"])
        t.add_row("short", 1)
        t.add_row("a-much-longer-cell", 2)
        lines = t.render().splitlines()
        # All data lines share the position of the second column.
        data = lines[1:2] + lines[3:5]
        positions = {line.rstrip().rfind(" ") for line in data}
        assert len(positions) == 1


class TestMathHelpers:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_validation(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_sweep_preserves_order(self):
        assert sweep([1, 2, 3], lambda x: x * x) == [1, 4, 9]


class TestTiming:
    def test_time_call_runs_fn_and_returns_seconds(self):
        calls = []
        elapsed = time_call(lambda: calls.append(1), repeat=3)
        assert len(calls) == 3
        assert elapsed >= 0.0

    def test_time_call_validates_repeat(self):
        with pytest.raises(ValueError):
            time_call(lambda: None, repeat=0)


class TestRss:
    def test_peak_rss_positive_on_posix(self):
        rss = peak_rss_kb()
        assert rss is None or (isinstance(rss, int) and rss > 0)

    def test_time_call_rss_pairs_timing_with_memory(self):
        calls = []
        elapsed, rss = time_call_rss(lambda: calls.append(1), repeat=2)
        assert len(calls) == 2
        assert elapsed >= 0.0
        assert rss == peak_rss_kb()


class TestBenchJson:
    def test_round_trip(self, tmp_path):
        import json

        record = {"benchmark": "test", "results": [{"n": 10, "sps": 123.5}]}
        path = write_bench_json(tmp_path / "sub" / "BENCH_test.json", record)
        assert path.exists()
        loaded = json.loads(path.read_text())
        rss = loaded.pop("peak_rss_kb")  # stamped on every record
        assert rss == peak_rss_kb() or rss is None
        assert loaded == record
        assert "peak_rss_kb" not in record  # the caller's dict is untouched

    def test_explicit_rss_wins(self, tmp_path):
        import json

        path = write_bench_json(tmp_path / "b.json", {"peak_rss_kb": 123})
        assert json.loads(path.read_text())["peak_rss_kb"] == 123

    def test_output_ends_with_newline(self, tmp_path):
        path = write_bench_json(tmp_path / "b.json", {"a": 1})
        assert path.read_text().endswith("\n")


class TestWorkloads:
    def test_make_ideal_dht_deterministic(self):
        a = make_ideal_dht(100, seed=5)
        b = make_ideal_dht(100, seed=5)
        assert list(a.circle.points) == list(b.circle.points)

    def test_make_ideal_dht_seed_sensitivity(self):
        a = make_ideal_dht(100, seed=5)
        b = make_ideal_dht(100, seed=6)
        assert list(a.circle.points) != list(b.circle.points)

    def test_make_sampler_and_counts(self):
        dht = make_ideal_dht(64, seed=7)
        sampler = make_sampler(dht, seed=7, n_hat=64.0)
        counts = selection_counts(sampler, 200)
        assert sum(counts.values()) == 200
        assert set(counts) <= set(range(64))
