"""Property-based checks on committee capture under adversarial placement.

Hypothesis drives arbitrary Byzantine layouts at fraction < 1/3 through
the committee machinery: under *uniform* sampling the empirical capture
frequency must stay inside the Bonferroni-corrected binomial acceptance
band around the analytic tail, for every placement -- where the peers
sit cannot matter, only how many there are.  Under a deflecting
(lie-in-lookup) sampler even a single colluder leaves the band, and
Hypothesis's shrinker reduces any failing layout to the minimal one.
"""

import random

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import find, given, settings, strategies as st  # noqa: E402

from repro.adversary import AdversaryState, acceptance_band  # noqa: E402
from repro.apps.committee import (  # noqa: E402
    CommitteeSpec,
    committee_failure_probability,
    empirical_committee_failure,
)

N = 60  # population size; fraction < 1/3 means at most 19 Byzantine peers
SPEC = CommitteeSpec(size=9)
ELECTIONS = 400
ALPHA = 1e-6

byz_sets = st.sets(st.integers(min_value=0, max_value=N - 1), max_size=19)


class _UniformSampler:
    """Seeded uniform member draws -- the honest King-Saia idealisation."""

    def __init__(self, seed):
        self._rng = random.Random(seed)

    def sample(self):
        return self._rng.randrange(N)


class _DeflectingSampler:
    """Uniform draw bent to the clockwise-first colluder, as a fully
    successful lie-in-lookup adversary would bend every query."""

    def __init__(self, seed, byzantine):
        self._rng = random.Random(seed)
        self._adv = AdversaryState(m=8)
        for peer in byzantine:
            self._adv.mark(peer, "lookup")

    def sample(self):
        return self._adv._deflect(self._rng.randrange(N))


def _layout_seed(byzantine):
    # Derandomised examples must still give distinct layouts distinct
    # (but reproducible) draw streams.
    return "layout:" + ",".join(map(str, sorted(byzantine)))


@settings(max_examples=30, deadline=None, derandomize=True)
@given(byz_sets)
def test_uniform_capture_stays_in_band_for_any_placement(byzantine):
    analytic = committee_failure_probability(N, len(byzantine), SPEC)
    observed = empirical_committee_failure(
        _UniformSampler(_layout_seed(byzantine)),
        byzantine.__contains__,
        SPEC,
        ELECTIONS,
    )
    lo, hi = acceptance_band(analytic, ELECTIONS, alpha=ALPHA)
    assert lo <= observed <= hi, (
        f"uniform sampling left the band for layout {sorted(byzantine)}: "
        f"observed {observed}, band [{lo}, {hi}] around {analytic}"
    )


@settings(max_examples=30, deadline=None, derandomize=True)
@given(byz_sets.filter(lambda s: len(s) >= 1))
def test_deflection_amplifies_any_nonempty_placement(byzantine):
    # A deflecting sampler routes every draw to a colluder, so committee
    # capture saturates regardless of where the colluders sit.
    observed = empirical_committee_failure(
        _DeflectingSampler(_layout_seed(byzantine), byzantine),
        byzantine.__contains__,
        SPEC,
        ELECTIONS,
    )
    assert observed == 1.0


def test_shrinking_finds_the_minimal_adversary_layout():
    # The smallest layout whose deflected capture escapes the uniform
    # acceptance band is a single colluder; shrinking must find exactly
    # that -- and minimise the peer id too.
    def escapes_uniform_band(byzantine):
        if not byzantine:
            return False
        analytic = committee_failure_probability(N, len(byzantine), SPEC)
        observed = empirical_committee_failure(
            _DeflectingSampler(_layout_seed(byzantine), byzantine),
            byzantine.__contains__,
            SPEC,
            ELECTIONS,
        )
        lo, hi = acceptance_band(analytic, ELECTIONS, alpha=ALPHA)
        return not (lo <= observed <= hi)

    minimal = find(
        byz_sets,
        escapes_uniform_band,
        settings=settings(max_examples=200, deadline=None, derandomize=True),
    )
    assert minimal == {0}
