"""Unit tests for the AdversaryState lie surface and the transport hook."""

import pytest

from repro.adversary import LIE_STRATEGIES, AdversaryState
from repro.dht.chord.node import LookupResult
from repro.sim.network import NullAdversary, RpcTransport


class _Node:
    """A minimal honest responder covering both backends' RPC shapes."""

    def __init__(self, node_id):
        self.node_id = node_id

    def lookup_step(self, target, excluded=None):
        return ("forward", (self.node_id + 1) % 256)

    def lookup(self, target):
        return LookupResult((target + 1) % 256, hops=3)

    def find_node(self, target, sender):
        return [(target + i) % 256 for i in range(4)]

    def find_clockwise(self, target, sender):
        return [(target + i) % 256 for i in range(4)]

    def get_successor(self):
        return (self.node_id + 1) % 256

    def get_successor_list(self):
        return [(self.node_id + i) % 256 for i in range(1, 5)]

    def get_predecessor(self):
        return (self.node_id - 1) % 256

    def closest_preceding_node(self, target):
        return (target - 1) % 256


def _transport(byzantine, strategy, honest=(3, 7)):
    t = RpcTransport()
    for node_id in sorted(set(byzantine) | set(honest)):
        t.register(node_id, _Node(node_id))
    adv = AdversaryState(m=8)
    for node_id in byzantine:
        adv.mark(node_id, strategy)
    t.install_adversary(adv)
    return t, adv


class TestMarking:
    def test_inactive_until_marked(self):
        adv = AdversaryState(m=8)
        assert not adv.active
        adv.mark(5)
        assert adv.active
        assert adv.is_byzantine(5)
        assert adv.byzantine_ids == frozenset({5})
        assert adv.colluders == (5,)

    def test_clear_restores_honesty(self):
        adv = AdversaryState(m=8)
        adv.mark(5)
        adv.mark(9, "census")
        adv.clear(5)
        assert adv.byzantine_ids == frozenset({9})
        adv.clear()
        assert not adv.active
        assert adv.colluders == ()

    def test_explicit_colluders_pin_the_clique(self):
        adv = AdversaryState(m=8)
        adv.set_colluders([40, 50])
        adv.mark(5)
        assert adv.colluders == (40, 50)

    def test_rejects_bad_strategy_and_ids(self):
        adv = AdversaryState(m=8)
        with pytest.raises(ValueError):
            adv.mark(5, "gaslight")
        with pytest.raises(ValueError):
            adv.mark(256)
        with pytest.raises(ValueError):
            AdversaryState(m=0)

    def test_describe_counts_strategies_and_lies(self):
        t, adv = _transport({5, 9}, "lookup")
        t.rpc(5, "lookup_step", 100)
        d = adv.describe()
        assert d["byzantine"] == 2
        assert d["by_strategy"] == {"lookup": 2}
        assert d["lies_told"] == 1
        assert d["lies_by_method"] == {"lookup_step": 1}


class TestDeflection:
    def test_deflect_is_clockwise_first_colluder(self):
        adv = AdversaryState(m=8)
        for c in (10, 100, 200):
            adv.mark(c)
        assert adv._deflect(5) == 10
        assert adv._deflect(10) == 10
        assert adv._deflect(11) == 100
        assert adv._deflect(201) == 10  # wraps

    def test_rewrite_is_deterministic(self):
        t, adv = _transport({5, 9}, "lookup")
        first = t.rpc(5, "lookup_step", 100)
        assert all(t.rpc(5, "lookup_step", 100) == first for _ in range(5))


class TestLookupLies:
    def test_lookup_step_claims_done_at_colluder(self):
        t, adv = _transport({5}, "lookup")
        status, owner = t.rpc(5, "lookup_step", 100)
        assert status == "done"
        assert owner in adv.byzantine_ids

    def test_full_lookup_deflects_node_id(self):
        t, adv = _transport({5}, "lookup")
        result = t.rpc(5, "lookup", 100)
        assert result.node_id in adv.byzantine_ids
        assert result.hops == 3  # the cost story is untouched

    def test_find_node_is_length_preserving(self):
        t, adv = _transport({5}, "lookup")
        out = t.rpc(5, "find_node", 100, 3)
        assert len(out) == 4
        assert out[0] in adv.byzantine_ids

    def test_maintenance_replies_stay_honest(self):
        # lie-in-lookup bends query routing only; stabilization
        # primitives answer truthfully so the ring still repairs.
        t, adv = _transport({5}, "lookup")
        assert t.rpc(5, "get_successor") == 6
        assert t.rpc(5, "get_successor_list") == [6, 7, 8, 9]

    def test_honest_nodes_unaffected(self):
        t, adv = _transport({5}, "lookup")
        assert t.rpc(3, "lookup_step", 100) == ("forward", 4)


class TestCensusLies:
    def test_even_ids_underreport(self):
        t, adv = _transport({6}, "census", honest=(3,))
        assert t.rpc(6, "get_successor_list") == [7]

    def test_odd_ids_overreport_colluders_first(self):
        t, adv = _transport({5, 9}, "census")
        out = t.rpc(9, "get_successor_list")
        assert out[:2] == [5, 9]
        assert len(out) >= 4

    def test_lookup_path_stays_honest(self):
        t, adv = _transport({5}, "census")
        assert t.rpc(5, "lookup_step", 100) == ("forward", 6)


class TestEclipseLies:
    def test_contact_replies_become_the_clique(self):
        t, adv = _transport({5, 9}, "eclipse")
        out = t.rpc(5, "find_node", 100, 3)
        assert set(out) <= adv.byzantine_ids

    def test_chord_maintenance_is_poisoned(self):
        t, adv = _transport({5, 9}, "eclipse")
        assert t.rpc(5, "get_predecessor") in adv.byzantine_ids
        assert set(t.rpc(5, "get_successor_list")) == adv.byzantine_ids
        assert t.rpc(5, "closest_preceding_node", 100) in adv.byzantine_ids


class TestTransportSurface:
    def test_null_adversary_is_transparent(self):
        t = RpcTransport()
        t.register(3, _Node(3))
        assert isinstance(t.adversary, NullAdversary)
        assert not t.adversary.active
        assert t.rpc(3, "lookup_step", 100) == ("forward", 4)

    def test_lies_cost_the_same_as_truths(self):
        honest = RpcTransport()
        honest.register(5, _Node(5))
        lying, _ = _transport({5}, "lookup", honest=())
        honest.rpc(5, "lookup_step", 100)
        lying.rpc(5, "lookup_step", 100)
        assert honest.messages_sent == lying.messages_sent
        assert honest.elapsed == lying.elapsed

    def test_oneway_replies_are_rewritten_too(self):
        t, adv = _transport({5}, "lookup")
        status, owner = t.oneway(5, "lookup_step", 100)
        assert status == "done"
        assert owner in adv.byzantine_ids

    def test_all_strategies_are_exposed(self):
        assert LIE_STRATEGIES == ("lookup", "census", "eclipse")


class TestLockstepRefusal:
    def test_chord_lockstep_refuses_active_adversary(self):
        import random

        from repro.dht.chord.network import ChordNetwork

        net = ChordNetwork.build(16, m=8, rng=random.Random(0))
        dht = net.dht()
        assert dht.lockstep_eligible()
        adv = AdversaryState(m=8)
        adv.mark(sorted(net.nodes)[0])
        net.transport.install_adversary(adv)
        assert not dht.lockstep_eligible()
        adv.clear()
        assert dht.lockstep_eligible()
