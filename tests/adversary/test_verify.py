"""The statistical harness must catch planted bugs and pass honest samplers.

These are the acceptance-criteria tests: rejection of a deliberately
biased sampler and acceptance of the honest one, both deterministic
under fixed seeds, plus the Bonferroni and binomial-band arithmetic the
verdicts rest on.
"""

import pytest

from repro.adversary.verify import (
    acceptance_band,
    bonferroni,
    verify_capture,
    verify_uniformity,
)


def _honest(rng):
    return rng.randrange(64)


def _biased(rng):
    # Peer 0 drawn with double weight -- the planted bug.
    pick = rng.randrange(65)
    return 0 if pick == 64 else pick


class TestBonferroni:
    def test_divides_alpha(self):
        assert bonferroni(0.05, 10) == pytest.approx(0.005)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            bonferroni(0.0, 5)
        with pytest.raises(ValueError):
            bonferroni(1.5, 5)
        with pytest.raises(ValueError):
            bonferroni(0.05, 0)


class TestVerifyUniformity:
    def test_accepts_honest_sampler(self):
        report = verify_uniformity(
            _honest, range(64), trials=8, draws=4000, alpha=0.01, seed=0
        )
        assert report.accepted
        assert report.rejections == 0
        assert report.corrected_alpha == pytest.approx(0.01 / 8)

    def test_rejects_planted_bias(self):
        report = verify_uniformity(
            _biased, range(64), trials=8, draws=4000, alpha=0.01, seed=0
        )
        assert not report.accepted
        assert report.min_p_value < report.corrected_alpha

    def test_deterministic_under_fixed_seed(self):
        a = verify_uniformity(_honest, range(64), trials=4, draws=2000, seed=7)
        b = verify_uniformity(_honest, range(64), trials=4, draws=2000, seed=7)
        assert a.p_values == b.p_values
        assert a.tv_distances == b.tv_distances

    def test_different_seeds_draw_differently(self):
        a = verify_uniformity(_honest, range(64), trials=4, draws=2000, seed=7)
        b = verify_uniformity(_honest, range(64), trials=4, draws=2000, seed=8)
        assert a.p_values != b.p_values

    def test_to_record_round_trips_the_verdict(self):
        report = verify_uniformity(_honest, range(64), trials=4, draws=2000, seed=0)
        record = report.to_record()
        assert record["accepted"] is True
        assert record["trials"] == 4
        assert record["min_p_value"] == report.min_p_value

    def test_guards_tiny_populations_and_thin_draws(self):
        with pytest.raises(ValueError):
            verify_uniformity(_honest, [1], trials=2, draws=100)
        with pytest.raises(ValueError):
            verify_uniformity(_honest, range(64), trials=2, draws=50)


class TestAcceptanceBand:
    def test_band_contains_the_mean(self):
        lo, hi = acceptance_band(0.1, 1000, alpha=1e-6)
        assert lo <= 0.1 <= hi
        assert 0.0 <= lo < hi <= 1.0

    def test_band_tightens_with_elections(self):
        lo1, hi1 = acceptance_band(0.1, 100, alpha=1e-6)
        lo2, hi2 = acceptance_band(0.1, 10_000, alpha=1e-6)
        assert (hi2 - lo2) < (hi1 - lo1)

    def test_degenerate_probabilities(self):
        assert acceptance_band(0.0, 100) == (0.0, 0.0)
        lo, hi = acceptance_band(1.0, 100)
        assert lo == hi == 1.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            acceptance_band(1.5, 100)
        with pytest.raises(ValueError):
            acceptance_band(0.5, 0)

    def test_verify_capture_flags_out_of_band(self):
        ok = verify_capture(0.1, 0.1, 1000, alpha=1e-6)
        assert ok["within_band"]
        bad = verify_capture(0.9, 0.1, 1000, alpha=1e-6)
        assert not bad["within_band"]
        assert bad["band_low"] <= bad["band_high"]
