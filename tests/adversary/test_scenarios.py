"""End-to-end adversarial scenario runs: wiring, reporting, presets, CLI."""

import pytest

from repro.scenarios import ScenarioSpec, adversary_table, preset, run_scenario

QUICK = dict(n=24, requests=60, seed=5)


@pytest.fixture(scope="module")
def byzantine_chord():
    return run_scenario(preset("byzantine", **QUICK))


@pytest.fixture(scope="module")
def byzantine_kademlia():
    return run_scenario(preset("byzantine", backend="kademlia", **QUICK))


class TestSpecSurface:
    def test_presets_validate(self):
        for name in ("byzantine", "eclipse", "flash-crowd"):
            spec = preset(name)
            assert spec.name == name

    def test_adversarial_property(self):
        assert preset("byzantine").adversarial
        assert not preset("smoke").adversarial

    def test_validation_rejects_bad_adversary_knobs(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", adv_fraction=1.0)
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", adv_strategy="gaslight")
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", committee_size=0)
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", load_shape="sawtooth")
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", key_skew=-1.0)

    def test_spec_record_carries_the_adversary_block(self):
        record = preset("byzantine").to_record()
        assert record["adv_fraction"] == 0.2
        assert record["adv_strategy"] == "lookup"
        assert record["load_shape"] == "constant"


class TestAdversarialRun:
    def test_run_completes_under_lies(self, byzantine_chord):
        assert byzantine_chord.completed > 0
        assert not byzantine_chord.truncated

    def test_adversary_block_reports_capture(self, byzantine_chord):
        adv = byzantine_chord.adversary
        assert adv is not None
        assert adv["strategy"] == "lookup"
        assert adv["byzantine_total"] > 0
        assert adv["capture_rate"] is not None
        # Deflection toward colluders must over-represent them: the
        # capture rate exceeds the Byzantine head-count fraction.
        assert adv["capture_rate"] > adv["byzantine_live"] / adv["live_total"]
        assert sum(s["lies_told"] for s in adv["shards"]) > 0

    def test_committee_block_has_both_rates(self, byzantine_chord):
        committee = byzantine_chord.adversary["committee"]
        assert committee["elections"] > 0
        assert 0.0 <= committee["empirical_capture"] <= 1.0
        assert 0.0 <= committee["analytic_capture"] <= 1.0

    def test_shard_reports_carry_adversarial_fields(self, byzantine_chord):
        for shard in byzantine_chord.shards:
            assert shard.byzantine > 0
            assert shard.captured_draws >= 0
            record = shard.to_record()
            assert "capture_rate" in record
            assert "honest_chi2_p" in record

    def test_kademlia_backend_runs_the_same_schema(self, byzantine_kademlia):
        adv = byzantine_kademlia.adversary
        assert adv is not None
        assert adv["capture_rate"] is not None
        assert adv["capture_rate"] > 0

    def test_honest_run_has_no_adversary_block(self):
        result = run_scenario(preset("smoke", **QUICK))
        assert result.adversary is None
        for shard in result.shards:
            assert shard.byzantine == 0
            assert shard.capture_rate is None
        assert result.to_record()["adversary"] is None

    def test_census_and_eclipse_strategies_run(self):
        for strategy in ("census", "eclipse"):
            result = run_scenario(
                preset("byzantine", adv_strategy=strategy, **QUICK)
            )
            assert result.completed > 0
            assert result.adversary["strategy"] == strategy

    def test_entry_vantage_stays_honest(self, byzantine_chord):
        # The service's lookup vantage is excluded from marking: the
        # threat model is lying participants, not a compromised client.
        spec = preset("byzantine", **QUICK)
        result = byzantine_chord
        assert result.adversary["byzantine_total"] <= spec.shards * round(
            spec.adv_fraction * spec.n
        )

    def test_adversary_table_renders(self, byzantine_chord):
        table = adversary_table([byzantine_chord])
        text = table.render()
        assert "byzantine" in text
        assert "lookup" in text


class TestHeterogeneousLoad:
    def test_flash_crowd_preset_completes(self):
        result = run_scenario(preset("flash-crowd", **QUICK))
        assert result.completed > 0
        assert result.adversary is None

    def test_diurnal_shape_with_dead_troughs_completes(self):
        spec = preset(
            "smoke",
            load_shape="diurnal",
            shape_amplitude=1.5,  # trough spends time at rate 0
            shape_period=40.0,
            **QUICK,
        )
        result = run_scenario(spec)
        assert result.completed + result.failed + result.rejected > 0
        assert not result.truncated

    def test_zipf_keys_route_through_rendezvous(self):
        result = run_scenario(
            preset("smoke", policy="rendezvous", key_skew=1.2, **QUICK)
        )
        assert result.completed > 0

    def test_constant_shape_is_bit_identical_to_legacy(self):
        # load_shape="constant" must not perturb a single draw.
        base = run_scenario(preset("smoke", **QUICK))
        shaped = run_scenario(preset("smoke", load_shape="constant", **QUICK))
        a, b = base.to_record(), shaped.to_record()
        a.pop("wall_seconds"), b.pop("wall_seconds")
        a["spec"].pop("name"), b["spec"].pop("name")
        assert a == b


class TestCli:
    def test_scenario_run_adversary_flags(self, capsys):
        from repro.cli import main

        code = main(
            ["scenario", "run", "--preset", "byzantine",
             "--n", "24", "--requests", "40", "--adversary", "0.25",
             "--lie", "census", "--committee-size", "8"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "adversary:" in out
        assert "census lies" in out

    def test_fault_presets_reject_adversary_flags(self, capsys):
        from repro.cli import main

        code = main(
            ["scenario", "run", "--preset", "mass-failure", "--adversary", "0.1"]
        )
        assert code == 2
        assert "only apply to churn presets" in capsys.readouterr().err

    def test_scenario_list_mentions_adversarial_presets(self, capsys):
        from repro.cli import main

        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        assert "Byzantine" in out
        assert "flash" in out
