"""Adversarial runs must be exactly reproducible: the lying-peer pins.

Same contract as ``tests/obs/test_determinism.py``, extended to the
adversary subsystem.  Every lie is a deterministic function of the
query and the colluder clique -- no adversary-side RNG -- so a seeded
Byzantine run is pinned bit for bit, per backend, and verified
identical under ``REPRO_PURE_PYTHON=1`` (the CI matrix runs this file
in both modes; the numbers below were captured with the accelerator on
and reproduced with it off).  The two backends must also emit the
*same adversary-record schema*, so downstream tooling never branches on
the substrate.
"""

from __future__ import annotations

import pytest

from repro.scenarios import preset, run_scenario

ADVERSARY_PINS = {
    "chord": {
        "completed": 80,
        "failed": 0,
        "sim_time": 500.0,
        "shard_messages": [479900, 308468],
        "shard_draws": [39, 41],
        "shard_captured": [24, 32],
        "byzantine_total": 10,
        "capture_rate": 0.7,
        "committee_empirical": 0.8,
        "lies_told": 13680,
        "latency_mean": 184.94178772493302,
    },
    "kademlia": {
        "completed": 80,
        "failed": 0,
        "sim_time": 800.0,
        "shard_messages": [88096, 784056],
        "shard_draws": [52, 28],
        "shard_captured": [14, 4],
        "byzantine_total": 10,
        "capture_rate": 0.225,
        "committee_empirical": 0.2,
        "lies_told": 399056,
        "latency_mean": 176.44187708094813,
    },
}


def _run(backend: str):
    return run_scenario(preset("byzantine", backend=backend, n=24, requests=80, seed=5))


def _pin_fields(result) -> dict:
    rec = result.to_record()
    adv = rec["adversary"]
    return {
        "completed": rec["completed"],
        "failed": rec["failed"],
        "sim_time": rec["sim_time"],
        "shard_messages": [s["messages"] for s in rec["shards"]],
        "shard_draws": [s["draws"] for s in rec["shards"]],
        "shard_captured": [s["captured_draws"] for s in rec["shards"]],
        "byzantine_total": adv["byzantine_total"],
        "capture_rate": adv["capture_rate"],
        "committee_empirical": adv["committee"]["empirical_capture"],
        "lies_told": sum(s["lies_told"] for s in adv["shards"]),
        "latency_mean": rec["latency"]["mean"],
    }


def _schema(value, path=""):
    """Flatten a record into sorted (path, type) leaves for comparison."""
    if isinstance(value, dict):
        if path.endswith("lies_by_method"):
            # keyed by RPC method name, which legitimately differs per
            # backend; the schema contract is str -> int
            assert all(
                isinstance(k, str) and isinstance(v, int) for k, v in value.items()
            )
            return [(f"{path}.*", "int")]
        out = []
        for k in value:
            out.extend(_schema(value[k], f"{path}.{k}"))
        return sorted(out)
    if isinstance(value, list):
        # lists vary in length across backends; one element pins the shape
        return _schema(value[0], f"{path}[]") if value else [(f"{path}[]", "empty")]
    return [(path, type(value).__name__)]


@pytest.fixture(scope="module")
def results():
    return {backend: _run(backend) for backend in sorted(ADVERSARY_PINS)}


@pytest.mark.parametrize("backend", sorted(ADVERSARY_PINS))
def test_adversarial_run_matches_pin(results, backend):
    assert _pin_fields(results[backend]) == ADVERSARY_PINS[backend]


@pytest.mark.parametrize("backend", sorted(ADVERSARY_PINS))
def test_adversarial_run_is_repeatable_in_process(results, backend):
    rec_a = results[backend].to_record()
    rec_b = _run(backend).to_record()
    rec_a.pop("wall_seconds", None)
    rec_b.pop("wall_seconds", None)
    assert rec_a == rec_b


def test_adversary_record_schema_identical_across_backends(results):
    chord = results["chord"].to_record()
    kad = results["kademlia"].to_record()
    assert _schema(chord["adversary"]) == _schema(kad["adversary"])
    assert _schema(chord["shards"][0]) == _schema(kad["shards"][0])
