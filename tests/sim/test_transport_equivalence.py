"""Property: sync and async transports agree under benign conditions.

With a constant latency model, zero loss, and one sequential caller,
the async transport's event-scheduled deliveries are just a slower way
to run the exact same exchanges the sync plane runs inline.  The
continuation-driven lookups were written to mirror their sync twins
exchange for exchange in that regime, so everything observable must
match: the resolved owner, the per-RPC (target, method) sequence seen
by the tracer, the message counters, and the charged latency.  Any
divergence means the async path changed protocol behaviour, not just
scheduling.

Kademlia runs with ``alpha=1``: at higher concurrency the async
frontier legitimately reorders probes (that concurrency is the
feature); at alpha=1 it must degenerate to the sync loop exactly.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dht.chord.async_lookup import lookup_async, lookup_recursive_async
from repro.dht.chord.network import ChordNetwork
from repro.dht.kademlia.async_lookup import find_successor_async
from repro.dht.kademlia.network import KademliaNetwork
from repro.sim.async_net import drive
from repro.sim.network import ConstantLatency

M = 12


class RecordingSink:
    """Tracer that records the schedule-independent part of each RPC."""

    active = True

    def __init__(self):
        self.events = []

    def on_rpc(self, source, target, method, kind, start, end, outcome):
        self.events.append((source, target, method, kind, outcome))


def _chord_pair(n: int, seed: int):
    sync = ChordNetwork.build(
        n, m=M, rng=random.Random(seed), latency=ConstantLatency(1.0)
    )
    asyn = ChordNetwork.build(
        n, m=M, rng=random.Random(seed), latency=ConstantLatency(1.0),
        async_transport=True,
    )
    return sync, asyn


def _kad_pair(n: int, seed: int):
    sync = KademliaNetwork.build(
        n, m=M, k=8, alpha=1, rng=random.Random(seed), latency=ConstantLatency(1.0)
    )
    asyn = KademliaNetwork.build(
        n, m=M, k=8, alpha=1, rng=random.Random(seed), latency=ConstantLatency(1.0),
        async_transport=True,
    )
    return sync, asyn


ring_cases = st.tuples(
    st.integers(min_value=8, max_value=32),  # n
    st.integers(min_value=0, max_value=2**16),  # build seed
    st.lists(st.integers(min_value=0, max_value=(1 << M) - 1), min_size=1, max_size=4),
)


@given(ring_cases)
@settings(max_examples=20, deadline=None)
def test_chord_iterative_lookup_equivalent(case):
    n, seed, targets = case
    sync_net, async_net = _chord_pair(n, seed)
    assert sorted(sync_net.nodes) == sorted(async_net.nodes)
    sync_sink, async_sink = RecordingSink(), RecordingSink()
    sync_net.transport.install_tracer(sync_sink)
    async_net.transport.install_tracer(async_sink)
    entry = min(sync_net.nodes)
    for target in targets:
        sync_result = sync_net.nodes[entry].lookup(target)
        async_result = drive(
            async_net.sim, lookup_async(async_net.nodes[entry], target)
        )
        assert async_result.node_id == sync_result.node_id
        assert async_result.hops == sync_result.hops
    assert async_sink.events == sync_sink.events
    assert async_net.transport.messages_sent == sync_net.transport.messages_sent
    assert async_net.transport.elapsed == sync_net.transport.elapsed
    assert (async_net.transport.metrics.counters()["rpc.calls"]
            == sync_net.transport.metrics.counters()["rpc.calls"])


@given(ring_cases)
@settings(max_examples=15, deadline=None)
def test_chord_recursive_lookup_same_owner(case):
    # The async recursive mode deliberately changes the message pattern
    # (per-hop acks, the owner casting straight back to the querier), so
    # only the *result* is pinned to the sync recursive mode here.
    n, seed, targets = case
    sync_net, async_net = _chord_pair(n, seed)
    entry = min(sync_net.nodes)
    for target in targets:
        sync_result = sync_net.nodes[entry].lookup_recursive(target)
        async_result = drive(
            async_net.sim, lookup_recursive_async(async_net.nodes[entry], target)
        )
        assert async_result.node_id == sync_result.node_id


@given(ring_cases)
@settings(max_examples=15, deadline=None)
def test_kademlia_find_successor_equivalent(case):
    n, seed, targets = case
    sync_net, async_net = _kad_pair(n, seed)
    assert sorted(sync_net.nodes) == sorted(async_net.nodes)
    sync_sink, async_sink = RecordingSink(), RecordingSink()
    sync_net.transport.install_tracer(sync_sink)
    async_net.transport.install_tracer(async_sink)
    entry = min(sync_net.nodes)
    for target in targets:
        sync_result = sync_net.nodes[entry].find_successor(target)
        async_result = drive(
            async_net.sim, find_successor_async(async_net.nodes[entry], target)
        )
        assert async_result.node_id == sync_result.node_id
    assert async_sink.events == sync_sink.events
    assert async_net.transport.messages_sent == sync_net.transport.messages_sent
    assert async_net.transport.elapsed == sync_net.transport.elapsed
