"""Tests for the Poisson churn process on a Chord network."""

from __future__ import annotations

import random

import pytest

from repro.dht.chord import ChordNetwork
from repro.sim.churn import ChurnProcess
from repro.sim.kernel import Simulator


def make_network(n=20, seed=0):
    sim = Simulator()
    net = ChordNetwork.build(n, m=18, rng=random.Random(seed), sim=sim)
    return net, sim


class TestChurnProcess:
    def test_rejects_bad_parameters(self):
        net, sim = make_network()
        with pytest.raises(ValueError):
            ChurnProcess(net, sim, rate=0.0)
        with pytest.raises(ValueError):
            ChurnProcess(net, sim, rate=1.0, crash_fraction=2.0)

    def test_generates_events_at_roughly_rate(self):
        net, sim = make_network()
        churn = ChurnProcess(net, sim, rate=1.0, rng=random.Random(1))
        churn.start()
        sim.run(until=200.0)
        # Poisson(200) events expected; allow wide slack.
        assert 120 <= len(churn.events) <= 300

    def test_population_stays_near_target(self):
        net, sim = make_network(n=20)
        churn = ChurnProcess(
            net, sim, rate=2.0, rng=random.Random(2), target_size=20, min_size=5
        )
        churn.start()
        sim.run(until=100.0)
        populations = [e.population for e in churn.events]
        assert min(populations) >= 5
        assert max(populations) <= 40

    def test_event_kinds_mixed(self):
        net, sim = make_network(n=30)
        churn = ChurnProcess(net, sim, rate=2.0, rng=random.Random(3), crash_fraction=0.5)
        churn.start()
        sim.run(until=100.0)
        kinds = {e.kind for e in churn.events}
        assert "join" in kinds
        assert kinds & {"leave", "crash"}

    def test_stop_halts_events(self):
        net, sim = make_network()
        churn = ChurnProcess(net, sim, rate=5.0, rng=random.Random(4))
        churn.start()
        sim.run(until=10.0)
        count = len(churn.events)
        churn.stop()
        sim.run(until=50.0)
        assert len(churn.events) == count

    def test_ring_recovers_after_churn_with_maintenance(self):
        net, sim = make_network(n=25, seed=5)
        net.start_periodic_maintenance(interval=1.0)
        churn = ChurnProcess(
            net, sim, rate=0.2, rng=random.Random(6), target_size=25, crash_fraction=0.5
        )
        churn.start()
        sim.run(until=120.0)
        churn.stop()
        # Let maintenance quiesce, then the ring must be perfect again.
        net.run_stabilization(15)
        assert net.ring_is_correct()
        assert net.predecessors_correct()
