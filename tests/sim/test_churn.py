"""Tests for the Poisson churn process on a Chord network."""

from __future__ import annotations

import random

import pytest

from repro.dht.chord import ChordNetwork
from repro.sim.churn import ChurnProcess
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry


def make_network(n=20, seed=0):
    sim = Simulator()
    net = ChordNetwork.build(n, m=18, rng=random.Random(seed), sim=sim)
    return net, sim


class TestChurnProcess:
    def test_rejects_bad_parameters(self):
        net, sim = make_network()
        with pytest.raises(ValueError):
            ChurnProcess(net, sim, rate=0.0)
        with pytest.raises(ValueError):
            ChurnProcess(net, sim, rate=1.0, crash_fraction=2.0)

    def test_generates_events_at_roughly_rate(self):
        net, sim = make_network()
        churn = ChurnProcess(net, sim, rate=1.0, rng=random.Random(1))
        churn.start()
        sim.run(until=200.0)
        # Poisson(200) events expected; allow wide slack.
        assert 120 <= len(churn.events) <= 300

    def test_population_stays_near_target(self):
        net, sim = make_network(n=20)
        churn = ChurnProcess(
            net, sim, rate=2.0, rng=random.Random(2), target_size=20, min_size=5
        )
        churn.start()
        sim.run(until=100.0)
        populations = [e.population for e in churn.events]
        assert min(populations) >= 5
        assert max(populations) <= 40

    def test_population_never_drops_below_min_size(self):
        # the floor is a guarantee: at n <= min_size every event is a join
        net, sim = make_network(n=6, seed=10)
        churn = ChurnProcess(
            net, sim, rate=5.0, rng=random.Random(11), target_size=6, min_size=6
        )
        churn.start()
        sim.run(until=60.0)
        assert len(churn.events) > 20
        assert min(e.population for e in churn.events) >= 6

    def test_event_kinds_mixed(self):
        net, sim = make_network(n=30)
        churn = ChurnProcess(net, sim, rate=2.0, rng=random.Random(3), crash_fraction=0.5)
        churn.start()
        sim.run(until=100.0)
        kinds = {e.kind for e in churn.events}
        assert "join" in kinds
        assert kinds & {"leave", "crash"}

    def test_stop_halts_events(self):
        net, sim = make_network()
        churn = ChurnProcess(net, sim, rate=5.0, rng=random.Random(4))
        churn.start()
        sim.run(until=10.0)
        count = len(churn.events)
        churn.stop()
        sim.run(until=50.0)
        assert len(churn.events) == count

    def test_accepts_rng_registry_stream(self):
        # the sim layer's seeding contract: churn draws from its own
        # named substream, so two same-seed runs churn identically
        logs = []
        for _ in range(2):
            net, sim = make_network(n=20, seed=7)
            churn = ChurnProcess(
                net, sim, rate=1.0, rng=RngRegistry(42), target_size=20
            )
            churn.start()
            sim.run(until=50.0)
            logs.append([(e.time, e.kind, e.node_id) for e in churn.events])
        assert logs[0] == logs[1]
        assert len(logs[0]) > 0

    def test_named_stream_isolates_churn_randomness(self):
        registry = RngRegistry(42)
        registry.stream("other").random()  # an unrelated consumer draws first
        net, sim = make_network(n=20, seed=7)
        churn = ChurnProcess(net, sim, rate=1.0, rng=registry, target_size=20)
        churn.start()
        sim.run(until=50.0)
        net2, sim2 = make_network(n=20, seed=7)
        churn2 = ChurnProcess(net2, sim2, rate=1.0, rng=RngRegistry(42), target_size=20)
        churn2.start()
        sim2.run(until=50.0)
        assert [e.time for e in churn.events] == [e.time for e in churn2.events]

    def test_event_log_is_an_immutable_snapshot(self):
        net, sim = make_network()
        churn = ChurnProcess(net, sim, rate=2.0, rng=random.Random(8))
        churn.start()
        sim.run(until=20.0)
        log = churn.events
        assert isinstance(log, tuple)
        sim.run(until=40.0)
        assert len(churn.events) > len(log)  # the snapshot did not grow

    def test_event_counts_sum_to_log_length(self):
        net, sim = make_network(n=30)
        churn = ChurnProcess(net, sim, rate=2.0, rng=random.Random(9))
        churn.start()
        sim.run(until=60.0)
        counts = churn.event_counts()
        assert set(counts) == {"join", "leave", "crash"}
        assert sum(counts.values()) == len(churn.events)

    def test_ring_recovers_after_churn_with_maintenance(self):
        net, sim = make_network(n=25, seed=5)
        net.start_periodic_maintenance(interval=1.0)
        churn = ChurnProcess(
            net, sim, rate=0.2, rng=random.Random(6), target_size=25, crash_fraction=0.5
        )
        churn.start()
        sim.run(until=120.0)
        churn.stop()
        # Let maintenance quiesce, then the ring must be perfect again.
        net.run_stabilization(15)
        assert net.ring_is_correct()
        assert net.predecessors_correct()
