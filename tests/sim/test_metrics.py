"""Tests for the metric primitives (counters, histograms, registry)."""

from __future__ import annotations

import random

import pytest

from repro.sim.metrics import Counter, Histogram, MetricsRegistry


class TestCounter:
    def test_increments(self):
        c = Counter()
        c.increment()
        c.increment(4)
        assert c.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().increment(-1)


class TestHistogramExact:
    def test_empty_defaults(self):
        h = Histogram()
        assert h.count == 0
        assert h.mean == 0.0
        assert h.minimum == 0.0
        assert h.maximum == 0.0
        assert h.percentile(99.0) == 0.0

    def test_aggregates(self):
        h = Histogram()
        for v in [3.0, 1.0, 2.0]:
            h.observe(v)
        assert h.count == 3
        assert h.mean == pytest.approx(2.0)
        assert h.minimum == 1.0
        assert h.maximum == 3.0

    def test_percentile_nearest_rank(self):
        h = Histogram()
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(50.0) == 50.0
        assert h.percentile(95.0) == 95.0
        assert h.percentile(99.0) == 99.0
        assert h.percentile(0.0) == 1.0
        assert h.percentile(100.0) == 100.0

    def test_percentile_range_check(self):
        with pytest.raises(ValueError):
            Histogram().percentile(101.0)

    def test_summary_keys_and_values(self):
        h = Histogram()
        for v in range(1, 101):
            h.observe(float(v))
        s = h.summary()
        assert s == {
            "count": 100,
            "mean": pytest.approx(50.5),
            "min": 1.0,
            "max": 100.0,
            "p50": 50.0,
            "p95": 95.0,
            "p99": 99.0,
            "p999": 100.0,
        }

    def test_quantile_general(self):
        h = Histogram()
        for v in range(1, 1001):
            h.observe(float(v))
        assert h.quantile(0.5) == h.percentile(50.0)
        assert h.quantile(0.999) == h.percentile(99.9)
        assert h.quantile(0.0) == 1.0
        assert h.quantile(1.0) == 1000.0

    def test_quantile_range_check(self):
        h = Histogram()
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.quantile(-0.1)
        with pytest.raises(ValueError):
            h.quantile(1.1)

    def test_quantile_empty(self):
        assert Histogram().quantile(0.5) == 0.0


class TestHistogramReservoir:
    def test_storage_is_bounded(self):
        h = Histogram(reservoir_size=64)
        for v in range(10_000):
            h.observe(float(v))
        assert len(h.values) == 64
        assert h.count == 10_000

    def test_exact_aggregates_survive_eviction(self):
        h = Histogram(reservoir_size=8)
        for v in range(1, 1001):
            h.observe(float(v))
        assert h.count == 1000
        assert h.mean == pytest.approx(500.5)
        assert h.minimum == 1.0
        assert h.maximum == 1000.0

    def test_percentiles_approximate_the_distribution(self):
        h = Histogram(reservoir_size=2000, rng=random.Random(7))
        for v in range(100_000):
            h.observe(float(v))
        # nearest-rank over a 2000-point uniform reservoir: generous bands
        assert h.percentile(50.0) == pytest.approx(50_000, rel=0.1)
        assert h.percentile(99.0) == pytest.approx(99_000, rel=0.05)

    def test_deterministic_default_rng(self):
        def fill():
            h = Histogram(reservoir_size=16)
            for v in range(500):
                h.observe(float(v))
            return h.values

        assert fill() == fill()

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            Histogram(reservoir_size=0)


class TestMetricsRegistry:
    def test_counters_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("a").increment(2)
        reg.counter("b").increment()
        assert reg.counters() == {"a": 2, "b": 1}

    def test_histogram_identity_and_config(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", reservoir_size=4)
        for v in range(100):
            h.observe(float(v))
        assert reg.histogram("lat") is h  # config applies on first use only
        assert len(reg.histogram("lat").values) == 4
        assert "lat" in reg.histograms()
