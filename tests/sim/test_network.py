"""Tests for the RPC transport, latency models, metrics, and RNG streams."""

from __future__ import annotations

import random

import pytest

from repro.sim.metrics import Counter, Histogram, MetricsRegistry
from repro.sim.network import (
    ConstantLatency,
    ExponentialLatency,
    RpcTimeout,
    RpcTransport,
    UniformLatency,
)
from repro.sim.rng import RngRegistry, derive_seed


class Echo:
    """Minimal RPC target."""

    def __init__(self):
        self.calls = 0

    def ping(self):
        self.calls += 1
        return "pong"

    def add(self, a, b=0):
        return a + b


class TestLatencyModels:
    def test_constant(self):
        assert ConstantLatency(2.5).sample(random.Random(0)) == 2.5

    def test_uniform_within_bounds(self):
        model = UniformLatency(1.0, 3.0)
        rng = random.Random(1)
        for _ in range(100):
            assert 1.0 <= model.sample(rng) <= 3.0

    def test_exponential_positive_with_mean(self):
        model = ExponentialLatency(mean=2.0)
        rng = random.Random(2)
        draws = [model.sample(rng) for _ in range(5000)]
        assert all(d >= 0 for d in draws)
        assert sum(draws) / len(draws) == pytest.approx(2.0, rel=0.1)


class TestRpcTransport:
    def test_basic_call(self):
        t = RpcTransport(rng=random.Random(0))
        t.register(1, Echo())
        assert t.rpc(1, "ping") == "pong"

    def test_arguments_forwarded(self):
        t = RpcTransport(rng=random.Random(0))
        t.register(1, Echo())
        assert t.rpc(1, "add", 2, b=3) == 5

    def test_messages_counted_per_call(self):
        t = RpcTransport(rng=random.Random(0))
        t.register(1, Echo())
        t.rpc(1, "ping")
        t.rpc(1, "ping")
        assert t.messages_sent == 4  # request + reply, twice

    def test_latency_accumulates(self):
        t = RpcTransport(latency=ConstantLatency(1.5), rng=random.Random(0))
        t.register(1, Echo())
        t.rpc(1, "ping")
        assert t.elapsed == 3.0  # round trip

    def test_dead_target_times_out(self):
        t = RpcTransport(rng=random.Random(0), timeout=9.0)
        with pytest.raises(RpcTimeout):
            t.rpc(42, "ping")
        assert t.elapsed == 9.0
        assert t.metrics.counter("rpc.timeouts").value == 1

    def test_deregistered_target_times_out(self):
        t = RpcTransport(rng=random.Random(0))
        t.register(1, Echo())
        t.deregister(1)
        with pytest.raises(RpcTimeout):
            t.rpc(1, "ping")

    def test_duplicate_registration_rejected(self):
        t = RpcTransport(rng=random.Random(0))
        t.register(1, Echo())
        with pytest.raises(ValueError):
            t.register(1, Echo())

    def test_loss_rate_drops_calls(self):
        t = RpcTransport(rng=random.Random(7), loss_rate=0.5)
        t.register(1, Echo())
        outcomes = []
        for _ in range(200):
            try:
                t.rpc(1, "ping")
                outcomes.append(True)
            except RpcTimeout:
                outcomes.append(False)
        losses = outcomes.count(False)
        assert 60 <= losses <= 140  # ~50%

    def test_loss_rate_validation(self):
        with pytest.raises(ValueError):
            RpcTransport(loss_rate=1.0)

    def test_node_oracle_access(self):
        t = RpcTransport(rng=random.Random(0))
        echo = Echo()
        t.register(5, echo)
        assert t.node(5) is echo
        assert t.is_registered(5)
        assert t.node_ids == [5]


class TestMetrics:
    def test_counter_monotonic(self):
        c = Counter()
        c.increment()
        c.increment(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.increment(-1)

    def test_histogram_summary(self):
        h = Histogram()
        for v in [1.0, 2.0, 3.0, 4.0]:
            h.observe(v)
        assert h.count == 4
        assert h.mean == 2.5
        assert h.minimum == 1.0
        assert h.maximum == 4.0
        assert h.percentile(50) == 2.0
        assert h.percentile(100) == 4.0

    def test_histogram_empty(self):
        h = Histogram()
        assert h.mean == 0.0
        assert h.percentile(50) == 0.0

    def test_histogram_percentile_validation(self):
        with pytest.raises(ValueError):
            Histogram().percentile(101)

    def test_registry_reuses_instances(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.histogram("y") is reg.histogram("y")
        reg.counter("x").increment(3)
        assert reg.counters() == {"x": 3}


class TestRngRegistry:
    def test_streams_are_deterministic(self):
        a = RngRegistry(7).stream("churn").random()
        b = RngRegistry(7).stream("churn").random()
        assert a == b

    def test_streams_are_independent(self):
        reg = RngRegistry(7)
        assert reg.stream("a").random() != reg.stream("b").random()

    def test_stream_cached(self):
        reg = RngRegistry(7)
        assert reg.stream("x") is reg.stream("x")
        assert "x" in reg

    def test_fresh_not_cached(self):
        reg = RngRegistry(7)
        assert reg.fresh("x") is not reg.fresh("x")
        assert reg.fresh("x").random() == reg.fresh("x").random()

    def test_derive_seed_stable_and_distinct(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")
