"""Tests for the RPC transport, latency models, metrics, and RNG streams."""

from __future__ import annotations

import random

import pytest

from repro.sim.metrics import Counter, Histogram, MetricsRegistry
from repro.sim.network import (
    ConstantLatency,
    ExponentialLatency,
    NullTraceSink,
    RpcTimeout,
    RpcTransport,
    UniformLatency,
)
from repro.sim.rng import RngRegistry, derive_seed


class Echo:
    """Minimal RPC target."""

    def __init__(self):
        self.calls = 0

    def ping(self):
        self.calls += 1
        return "pong"

    def add(self, a, b=0):
        return a + b


class TestLatencyModels:
    def test_constant(self):
        assert ConstantLatency(2.5).sample(random.Random(0)) == 2.5

    def test_uniform_within_bounds(self):
        model = UniformLatency(1.0, 3.0)
        rng = random.Random(1)
        for _ in range(100):
            assert 1.0 <= model.sample(rng) <= 3.0

    def test_exponential_positive_with_mean(self):
        model = ExponentialLatency(mean=2.0)
        rng = random.Random(2)
        draws = [model.sample(rng) for _ in range(5000)]
        assert all(d >= 0 for d in draws)
        assert sum(draws) / len(draws) == pytest.approx(2.0, rel=0.1)


class TestRpcTransport:
    def test_basic_call(self):
        t = RpcTransport(rng=random.Random(0))
        t.register(1, Echo())
        assert t.rpc(1, "ping") == "pong"

    def test_arguments_forwarded(self):
        t = RpcTransport(rng=random.Random(0))
        t.register(1, Echo())
        assert t.rpc(1, "add", 2, b=3) == 5

    def test_messages_counted_per_call(self):
        t = RpcTransport(rng=random.Random(0))
        t.register(1, Echo())
        t.rpc(1, "ping")
        t.rpc(1, "ping")
        assert t.messages_sent == 4  # request + reply, twice

    def test_latency_accumulates(self):
        t = RpcTransport(latency=ConstantLatency(1.5), rng=random.Random(0))
        t.register(1, Echo())
        t.rpc(1, "ping")
        assert t.elapsed == 3.0  # round trip

    def test_dead_target_times_out(self):
        t = RpcTransport(rng=random.Random(0), timeout=9.0)
        with pytest.raises(RpcTimeout):
            t.rpc(42, "ping")
        assert t.elapsed == 9.0
        assert t.metrics.counter("rpc.timeouts").value == 1

    def test_failed_call_charges_the_lost_request(self):
        # Pin of the _admit charge model: a timed-out call is never free
        # -- one message (the request that went nowhere), the full
        # timeout interval, and a timeout tick.  The async transport's
        # failure accounting is defined as matching exactly this.
        t = RpcTransport(rng=random.Random(0), timeout=9.0)
        with pytest.raises(RpcTimeout):
            t.rpc(42, "ping")
        assert t.messages_sent == 1
        assert t.messages_by_method().get("ping") == 1

    def test_deregistered_target_times_out(self):
        t = RpcTransport(rng=random.Random(0))
        t.register(1, Echo())
        t.deregister(1)
        with pytest.raises(RpcTimeout):
            t.rpc(1, "ping")

    def test_duplicate_registration_rejected(self):
        t = RpcTransport(rng=random.Random(0))
        t.register(1, Echo())
        with pytest.raises(ValueError):
            t.register(1, Echo())

    def test_loss_rate_drops_calls(self):
        t = RpcTransport(rng=random.Random(7), loss_rate=0.5)
        t.register(1, Echo())
        outcomes = []
        for _ in range(200):
            try:
                t.rpc(1, "ping")
                outcomes.append(True)
            except RpcTimeout:
                outcomes.append(False)
        losses = outcomes.count(False)
        assert 60 <= losses <= 140  # ~50%

    def test_loss_rate_validation(self):
        with pytest.raises(ValueError):
            RpcTransport(loss_rate=1.0)

    def test_node_oracle_access(self):
        t = RpcTransport(rng=random.Random(0))
        echo = Echo()
        t.register(5, echo)
        assert t.node(5) is echo
        assert t.is_registered(5)
        assert t.node_ids == [5]


class TestMetrics:
    def test_counter_monotonic(self):
        c = Counter()
        c.increment()
        c.increment(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.increment(-1)

    def test_histogram_summary(self):
        h = Histogram()
        for v in [1.0, 2.0, 3.0, 4.0]:
            h.observe(v)
        assert h.count == 4
        assert h.mean == 2.5
        assert h.minimum == 1.0
        assert h.maximum == 4.0
        assert h.percentile(50) == 2.0
        assert h.percentile(100) == 4.0

    def test_histogram_empty(self):
        h = Histogram()
        assert h.mean == 0.0
        assert h.percentile(50) == 0.0

    def test_histogram_percentile_validation(self):
        with pytest.raises(ValueError):
            Histogram().percentile(101)

    def test_registry_reuses_instances(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.histogram("y") is reg.histogram("y")
        reg.counter("x").increment(3)
        assert reg.counters() == {"x": 3}


class TestRngRegistry:
    def test_streams_are_deterministic(self):
        a = RngRegistry(7).stream("churn").random()
        b = RngRegistry(7).stream("churn").random()
        assert a == b

    def test_streams_are_independent(self):
        reg = RngRegistry(7)
        assert reg.stream("a").random() != reg.stream("b").random()

    def test_stream_cached(self):
        reg = RngRegistry(7)
        assert reg.stream("x") is reg.stream("x")
        assert "x" in reg

    def test_fresh_not_cached(self):
        reg = RngRegistry(7)
        assert reg.fresh("x") is not reg.fresh("x")
        assert reg.fresh("x").random() == reg.fresh("x").random()

    def test_derive_seed_stable_and_distinct(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")


class AlwaysDrop(random.Random):
    """A loss stream whose every draw falls below any positive rate."""

    def random(self):
        return 0.0


class NeverDrop(random.Random):
    def random(self):
        return 0.999999


class TestFaultInjection:
    """The transport consulting an installed FaultState per delivery."""

    def _transport(self, **kwargs):
        from repro.faults.state import FaultState

        transport = RpcTransport(**kwargs)
        faults = transport.install_faults(FaultState())
        transport.register(1, Echo())
        transport.register(2, Echo())
        return transport, faults

    def test_install_faults_replaces_null_object(self):
        transport, faults = self._transport()
        assert transport.faults is faults
        assert not transport.faults.active

    def test_full_partition_blocks_attributed_calls(self):
        transport, faults = self._transport()
        faults.partition([[1], [2]], mode="full")
        with pytest.raises(RpcTimeout, match="partitioned"):
            transport.endpoint(1).rpc(2, "ping")
        assert transport.node(2).calls == 0  # the request never crossed

    def test_external_client_crosses_a_partition(self):
        transport, faults = self._transport()
        faults.partition([[1], [2]], mode="full")
        # The bare transport carries no source: an external client is in
        # no reachability group, so the partition does not apply.
        assert transport.rpc(2, "ping") == "pong"

    def test_oneway_partition_runs_handler_but_loses_reply(self):
        transport, faults = self._transport()
        faults.partition([[1], [2]], mode="oneway")
        # Group 0 -> group 1: request crosses, reply leg is severed.
        with pytest.raises(RpcTimeout, match="reply partitioned"):
            transport.endpoint(1).rpc(2, "ping")
        assert transport.node(2).calls == 1  # side effects stand
        # Group 1 -> group 0 is blocked outright.
        with pytest.raises(RpcTimeout, match="partitioned"):
            transport.endpoint(2).rpc(1, "ping")
        assert transport.node(1).calls == 0

    def test_oneway_oneway_message_crosses_downhill_only(self):
        transport, faults = self._transport()
        faults.partition([[1], [2]], mode="oneway")
        transport.endpoint(1).oneway(2, "ping")  # no reply leg to lose
        assert transport.node(2).calls == 1

    def test_grey_node_inflates_latency_on_both_legs(self):
        transport, faults = self._transport(latency=ConstantLatency(1.0))
        faults.set_grey(2, latency_factor=5.0)
        transport.endpoint(1).rpc(2, "ping")
        assert transport.elapsed == pytest.approx(10.0)  # 5 * (1 + 1)
        transport.endpoint(2).rpc(1, "ping")  # grey source, clean target
        assert transport.elapsed == pytest.approx(20.0)

    def test_grey_extra_loss_drops_on_the_loss_stream(self):
        transport, faults = self._transport(loss_rng=AlwaysDrop())
        transport.register(3, Echo())
        faults.set_grey(2, extra_loss=0.5)
        with pytest.raises(RpcTimeout, match="lost"):
            transport.endpoint(1).rpc(2, "ping")
        with pytest.raises(RpcTimeout, match="lost"):
            transport.endpoint(2).rpc(1, "ping")  # grey source drops too
        # Legs not touching the grey node see no extra loss at all
        # (extra_drop is 0, baseline loss is 0: the die is never rolled).
        assert transport.endpoint(1).rpc(3, "ping") == "pong"

    def test_burst_loss_hits_every_delivery(self):
        transport, faults = self._transport(loss_rng=AlwaysDrop())
        faults.set_burst_loss(0.5)
        with pytest.raises(RpcTimeout, match="lost"):
            transport.rpc(1, "ping")
        faults.set_burst_loss(0.0)
        assert transport.rpc(1, "ping") == "pong"

    def test_burst_survives_when_die_is_high(self):
        transport, faults = self._transport(loss_rng=NeverDrop())
        faults.set_burst_loss(0.5)
        assert transport.rpc(1, "ping") == "pong"

    def test_drop_die_rolls_on_dedicated_stream_only(self):
        # Two transports with identical loss streams but different
        # latency RNGs must drop exactly the same calls: the drop die
        # never touches the latency stream and vice versa.
        def drop_pattern(latency_seed):
            transport = RpcTransport(
                latency=UniformLatency(0.5, 1.5),
                rng=random.Random(latency_seed),
                loss_rate=0.4,
                loss_rng=random.Random(777),
            )
            transport.register(1, Echo())
            pattern = []
            for _ in range(40):
                try:
                    transport.rpc(1, "ping")
                    pattern.append(True)
                except RpcTimeout:
                    pattern.append(False)
            return pattern

        assert drop_pattern(1) == drop_pattern(2)

    def test_loss_free_transport_never_rolls_the_die(self):
        # With no loss source in play the loss stream must stay unread,
        # so enabling faults later cannot have shifted earlier draws.
        loss_rng = random.Random(5)
        before = loss_rng.getstate()
        transport, faults = self._transport(loss_rng=loss_rng)
        transport.endpoint(1).rpc(2, "ping")
        faults.partition([[1], [2]])  # a partition is not a loss source
        with pytest.raises(RpcTimeout):
            transport.endpoint(1).rpc(2, "ping")
        assert loss_rng.getstate() == before

    def test_endpoint_mirrors_transport_surface(self):
        transport, _ = self._transport(timeout=3.0)
        endpoint = transport.endpoint(1)
        assert endpoint.node_id == 1
        assert endpoint.timeout == 3.0
        assert endpoint.metrics is transport.metrics
        assert endpoint.is_registered(2)
        endpoint.charge_delay(2.5)
        assert transport.elapsed == 2.5


class TestMethodMessages:
    """Per-method message accounting cross-checks the aggregate counter."""

    def _transport(self, **kwargs):
        kwargs.setdefault("rng", random.Random(0))
        t = RpcTransport(**kwargs)
        t.register(1, Echo())
        return t

    def test_rpc_charges_two_per_call(self):
        t = self._transport()
        t.rpc(1, "ping")
        t.rpc(1, "ping")
        t.rpc(1, "add", 1, b=2)
        assert t.messages_by_method() == {"ping": 4, "add": 2}

    def test_oneway_charges_one(self):
        t = self._transport()
        t.oneway(1, "ping")
        assert t.messages_by_method() == {"ping": 1}

    def test_timeout_charges_the_lost_request(self):
        t = self._transport(timeout=5.0)
        with pytest.raises(RpcTimeout):
            t.rpc(99, "ping")
        assert t.messages_by_method() == {"ping": 1}

    def test_split_sums_to_aggregate(self):
        t = self._transport(loss_rate=0.3, loss_rng=random.Random(3))
        for _ in range(50):
            for call in (lambda: t.rpc(1, "ping"), lambda: t.oneway(1, "add", 1)):
                try:
                    call()
                except RpcTimeout:
                    pass
        assert sum(t.messages_by_method().values()) == t.messages_sent

    def test_bulk_attribution_for_offline_engines(self):
        t = self._transport()
        t.rpc(1, "ping")
        t.count_method_messages("find_successor", 120)
        assert t.messages_by_method()["find_successor"] == 120

    def test_counters_materialize_on_read(self):
        t = self._transport()
        t.rpc(1, "ping")
        assert "messages.ping" not in t.metrics.counters()  # lazy hot path
        registry = t.method_message_counters()
        assert registry is t.metrics
        assert registry.counters()["messages.ping"] == 2
        t.rpc(1, "ping")
        assert t.method_message_counters().counters()["messages.ping"] == 4


class _RecordingSink:
    """A duck-typed trace sink that is always recording."""

    enabled = True
    active = True

    def __init__(self):
        self.rpcs = []

    def on_rpc(self, source, target, method, kind, start, end, outcome):
        self.rpcs.append((source, target, method, kind, start, end, outcome))


class TestTraceSink:
    def test_null_sink_is_the_default(self):
        t = RpcTransport(rng=random.Random(0))
        assert isinstance(t.tracer, NullTraceSink)
        assert t.tracer.active is False

    def test_install_tracer_replaces_and_returns(self):
        t = RpcTransport(rng=random.Random(0))
        sink = _RecordingSink()
        assert t.install_tracer(sink) is sink
        assert t.tracer is sink

    def test_ok_delivery_reported_with_latency_window(self):
        t = RpcTransport(latency=ConstantLatency(1.0), rng=random.Random(0))
        t.register(1, Echo())
        sink = t.install_tracer(_RecordingSink())
        t.rpc(1, "ping")
        ((source, target, method, kind, start, end, outcome),) = sink.rpcs
        assert (source, target, method, kind) == (None, 1, "ping", "rpc")
        assert (start, end) == (0.0, 2.0)
        assert outcome == "ok"

    def test_timeout_reported_with_reason(self):
        t = RpcTransport(rng=random.Random(0), timeout=7.0)
        sink = t.install_tracer(_RecordingSink())
        with pytest.raises(RpcTimeout):
            t.rpc(42, "ping")
        ((*_head, outcome),) = sink.rpcs
        assert outcome == "dead or unknown"

    def test_inactive_sink_sees_nothing(self):
        t = RpcTransport(rng=random.Random(0))
        t.register(1, Echo())
        sink = _RecordingSink()
        sink.active = False
        t.install_tracer(sink)
        t.rpc(1, "ping")
        assert sink.rpcs == []


class TestLatencyDeterminismFlags:
    def test_flags_declare_rng_consumption(self):
        assert ConstantLatency().deterministic is True
        assert UniformLatency(0.5, 1.5).deterministic is False
        assert ExponentialLatency(1.0).deterministic is False

    def test_constant_sample_ignores_rng(self):
        rng = random.Random(3)
        before = rng.getstate()
        ConstantLatency(2.0).sample(rng)
        assert rng.getstate() == before

    @pytest.mark.parametrize(
        "model", [UniformLatency(0.5, 1.5), ExponentialLatency(1.0)]
    )
    def test_stochastic_samples_consume_rng(self, model):
        rng = random.Random(3)
        before = rng.getstate()
        model.sample(rng)
        assert rng.getstate() != before
