"""Tests for the event queue and discrete-event kernel."""

from __future__ import annotations

import pytest

from repro.sim.events import EventQueue
from repro.sim.kernel import Simulator


class TestEventQueue:
    def test_fifo_at_same_time(self):
        q = EventQueue()
        order = []
        q.push(1.0, lambda: order.append("a"))
        q.push(1.0, lambda: order.append("b"))
        q.pop().action()
        q.pop().action()
        assert order == ["a", "b"]

    def test_time_ordering(self):
        q = EventQueue()
        q.push(2.0, lambda: None)
        first = q.push(1.0, lambda: None)
        assert q.pop() is first

    def test_cancel_skipped(self):
        q = EventQueue()
        e1 = q.push(1.0, lambda: None)
        e2 = q.push(2.0, lambda: None)
        e1.cancel()
        assert q.pop() is e2
        assert q.pop() is None

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        e1 = q.push(1.0, lambda: None)
        q.push(3.0, lambda: None)
        e1.cancel()
        assert q.peek_time() == 3.0

    def test_len_counts_live_only(self):
        q = EventQueue()
        e1 = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        e1.cancel()
        assert len(q) == 1

    def test_bool_empty(self):
        q = EventQueue()
        assert not q
        q.push(1.0, lambda: None)
        assert q

    def test_tombstones_compact_lazily(self):
        # The async-transport pattern: every call arms a far-future
        # timeout that the reply cancels.  Without compaction the heap
        # keeps every tombstone until its timestamp surfaces; with it,
        # raw_size stays within a constant factor of the live count.
        q = EventQueue()
        live = [q.push(1_000_000.0 + i, lambda: None) for i in range(8)]
        for i in range(10_000):
            q.push(1_000.0 + i, lambda: None).cancel()
            assert q.raw_size <= 2 * len(q) + 1
        assert len(q) == 8
        assert sorted(e.seq for e in q._heap if not e.cancelled) == sorted(
            e.seq for e in live
        )

    def test_default_compact_factor_pins_two_x_live_bound(self):
        # The documented contract at compact_factor=1.0: raw_size never
        # exceeds twice the live count plus the one cancel that fires
        # compaction, across an adversarial cancel-heavy schedule.
        q = EventQueue()
        assert q.compact_factor == 1.0
        for i in range(64):
            q.push(1_000_000.0 + i, lambda: None)
        worst = 0
        for i in range(5_000):
            q.push(1_000.0 + i, lambda: None).cancel()
            worst = max(worst, q.raw_size)
            assert q.raw_size <= 2 * len(q) + 1
        assert worst > len(q)  # tombstones really did accumulate
        assert len(q) == 64

    def test_compact_factor_is_configurable(self):
        # A looser factor admits proportionally more tombstones before
        # compacting (fewer re-heapify passes), but still bounds growth.
        q = EventQueue(compact_factor=4.0)
        for i in range(16):
            q.push(1_000_000.0 + i, lambda: None)
        worst = 0
        for i in range(2_000):
            q.push(1_000.0 + i, lambda: None).cancel()
            worst = max(worst, q.raw_size)
            assert q.raw_size <= 5 * len(q) + 1
        # the looser bound was actually used: growth beyond the 2x-live
        # ceiling that the default factor would have enforced
        assert worst > 2 * len(q) + 1
        assert len(q) == 16

    def test_compact_factor_rejects_nonpositive(self):
        import pytest

        with pytest.raises(ValueError):
            EventQueue(compact_factor=0)
        with pytest.raises(ValueError):
            EventQueue(compact_factor=-1.5)

    def test_compaction_preserves_order_and_len(self):
        q = EventQueue()
        events = [q.push(float(i), lambda i=i: i) for i in range(100)]
        for e in events[::2]:  # cancel every other one -> triggers compaction
            e.cancel()
        assert len(q) == 50
        times = []
        while True:
            event = q.pop()
            if event is None:
                break
            times.append(event.time)
        assert times == [float(i) for i in range(1, 100, 2)]

    def test_cancel_after_pop_does_not_corrupt_accounting(self):
        q = EventQueue()
        event = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        assert q.pop() is event
        event.cancel()  # already popped: a no-op for queue accounting
        assert len(q) == 1
        assert q.raw_size == 1


class TestSimulator:
    def test_clock_advances_to_event_times(self):
        sim = Simulator()
        times = []
        sim.schedule(5.0, lambda: times.append(sim.now))
        sim.schedule(2.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [2.0, 5.0]
        assert sim.now == 5.0

    def test_rejects_negative_delay(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_absolute(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(3.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [3.0]

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)

    def test_run_until_stops_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        sim.run()
        assert fired == [1, 10]

    def test_run_for_advances_relative(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run_for(3.0)
        assert sim.now == 3.0
        sim.run_for(2.0)
        assert sim.now == 5.0

    def test_max_events_cap(self):
        sim = Simulator()
        count = []
        for i in range(10):
            sim.schedule(float(i + 1), lambda: count.append(1))
        sim.run(max_events=4)
        assert len(count) == 4

    def test_events_can_schedule_events(self):
        sim = Simulator()
        fired = []

        def chain(depth):
            fired.append(sim.now)
            if depth > 0:
                sim.schedule(1.0, lambda: chain(depth - 1))

        sim.schedule(1.0, lambda: chain(3))
        sim.run()
        assert fired == [1.0, 2.0, 3.0, 4.0]

    def test_periodic_task_fires_and_cancels(self):
        sim = Simulator()
        ticks = []
        task = sim.every(2.0, lambda: ticks.append(sim.now))
        sim.run(until=7.0)
        assert ticks == [2.0, 4.0, 6.0]
        task.cancel()
        sim.run(until=20.0)
        assert ticks == [2.0, 4.0, 6.0]

    def test_periodic_first_delay(self):
        sim = Simulator()
        ticks = []
        sim.every(5.0, lambda: ticks.append(sim.now), first_delay=1.0)
        sim.run(until=11.0)
        assert ticks == [1.0, 6.0, 11.0]

    def test_periodic_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            Simulator().every(0.0, lambda: None)

    def test_events_executed_counter(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.events_executed == 2
