"""Tests for the asynchronous message-level transport.

The contract under test (see the ``repro.sim.async_net`` module
docstring): each request/reply is its own scheduled delivery, timeouts
are real events that a reply cancels, latency draws happen at send time
while liveness is judged at delivery time, and the accounting is
charge-identical to the sync plane (two messages + RTT on success, one
message + a timeout tick + the full interval on failure).
"""

from __future__ import annotations

import random

import pytest

from repro.sim.async_net import AsyncRpcTransport, Call, Future, drive
from repro.sim.kernel import Simulator
from repro.sim.network import ConstantLatency, RpcTimeout, RpcTransport, UniformLatency


class Echo:
    def __init__(self):
        self.calls = 0
        self.casts = []

    def ping(self):
        self.calls += 1
        return "pong"

    def add(self, a, b=0):
        return a + b

    def note(self, value):
        self.casts.append(value)


def _transport(latency=None, **kwargs) -> tuple[Simulator, AsyncRpcTransport]:
    sim = Simulator()
    t = AsyncRpcTransport(
        sim,
        latency=latency or ConstantLatency(1.0),
        rng=random.Random(0),
        **kwargs,
    )
    t.register(1, Echo())
    t.register(2, Echo())
    return sim, t


class TestAsyncCallPlane:
    def test_reply_arrives_as_event(self):
        sim, t = _transport()
        got = []
        t.call(1, "ping", on_reply=got.append)
        assert got == []  # nothing delivered before the clock moves
        sim.run()
        assert got == ["pong"]
        assert sim.now == 2.0  # two constant one-way legs

    def test_arguments_and_kwargs_forwarded(self):
        sim, t = _transport()
        got = []
        t.call(1, "add", 2, b=3, on_reply=got.append)
        sim.run()
        assert got == [5]

    def test_replies_reorder_across_calls(self):
        # Draw order is send order, but delivery order follows the draws:
        # a slow first call's reply lands after a fast second call's.
        sim = Simulator()
        t = AsyncRpcTransport(sim, latency=UniformLatency(0.5, 1.5), rng=random.Random(3))
        t.register(1, Echo())
        order = []
        t.call(1, "add", 1, on_reply=lambda r: order.append(("first", sim.now)))
        t.call(1, "add", 2, on_reply=lambda r: order.append(("second", sim.now)))
        sim.run()
        assert {name for name, _ in order} == {"first", "second"}
        # seed 3 makes the draws unequal; whichever landed first did so
        # strictly earlier, proving per-leg independence
        assert order[0][1] < order[1][1]

    def test_accounting_parity_with_sync_success(self):
        sim, t = _transport()
        sync = RpcTransport(latency=ConstantLatency(1.0), rng=random.Random(0))
        sync.register(1, Echo())
        sync.rpc(1, "ping")
        t.call(1, "ping")
        sim.run()
        assert t.messages_sent == sync.messages_sent == 2
        assert t.elapsed == sync.elapsed == 2.0
        assert t.metrics.counters()["rpc.calls"] == 1

    def test_dead_target_times_out_with_sync_charges(self):
        sim, t = _transport(timeout=8.0)
        timeouts = []
        t.call(99, "ping", on_timeout=timeouts.append)
        sim.run()
        assert len(timeouts) == 1
        assert isinstance(timeouts[0], RpcTimeout)
        assert sim.now == 8.0  # the timeout is a real event at now+timeout
        # sync parity: one lost request message, one timeout tick, the
        # full timeout interval charged to elapsed
        assert t.messages_sent == 1
        assert t.elapsed == 8.0
        assert t.metrics.counters()["rpc.timeouts"] == 1

    def test_target_dying_mid_flight_eats_the_request(self):
        sim, t = _transport(timeout=8.0)
        timeouts = []
        t.call(1, "ping", on_timeout=timeouts.append)
        sim.schedule(0.5, lambda: t.deregister(1))  # dies while in flight
        sim.run()
        assert len(timeouts) == 1
        assert t.messages_sent == 1  # the reply was never sent

    def test_late_reply_dropped_and_counted(self):
        # Timeout shorter than the round trip: the timeout event wins,
        # the reply arrives to no one and only bumps rpc.late_replies.
        sim, t = _transport(latency=ConstantLatency(3.0), timeout=4.0)
        replies, timeouts = [], []
        t.call(1, "ping", on_reply=replies.append, on_timeout=timeouts.append)
        sim.run()
        assert replies == []
        assert len(timeouts) == 1
        # both legs were charged (the reply was already on the wire when
        # the timeout fired), plus the timeout interval
        assert t.messages_sent == 2
        assert t.metrics.counters()["rpc.late_replies"] == 1

    def test_cancel_before_delivery_suppresses_the_reply(self):
        sim, t = _transport()
        replies, timeouts = [], []
        call = t.call(1, "ping", on_reply=replies.append, on_timeout=timeouts.append)
        call.cancel()
        sim.run()
        assert replies == [] and timeouts == []
        assert t.metrics.counters()["rpc.cancelled"] == 1
        # the target never sends a reply nobody will read
        assert t.messages_sent == 1
        assert t.metrics.counters()["rpc.late_replies"] == 0

    def test_cancel_with_reply_in_flight_drops_it_late(self):
        sim, t = _transport()
        replies = []
        call = t.call(1, "ping", on_reply=replies.append)
        # request lands at 1.0 (reply goes on the wire), cancel at 1.5,
        # the reply arrives at 2.0 to no one
        sim.schedule(1.5, call.cancel)
        sim.run()
        assert replies == []
        assert t.messages_sent == 2
        assert t.metrics.counters()["rpc.cancelled"] == 1
        assert t.metrics.counters()["rpc.late_replies"] == 1

    def test_per_call_timeout_override(self):
        sim, t = _transport(latency=ConstantLatency(5.0), timeout=100.0)
        timeouts = []
        t.call(1, "ping", on_timeout=timeouts.append, timeout=2.0)
        sim.run(until=3.0)
        assert len(timeouts) == 1

    def test_rtt_log_captures_real_round_trips(self):
        sim, t = _transport(latency=UniformLatency(0.5, 1.5))
        t.rtt_log = []
        for _ in range(10):
            t.call(1, "ping")
        sim.run()
        assert len(t.rtt_log) == 10
        assert all(1.0 <= rtt <= 3.0 for rtt in t.rtt_log)

    def test_tracer_sees_actual_delivery_instants(self):
        sim, t = _transport(latency=ConstantLatency(1.5))

        class Sink:
            active = True

            def __init__(self):
                self.events = []

            def on_rpc(self, source, target, method, kind, start, end, outcome):
                self.events.append((source, target, method, kind, start, end, outcome))

        sink = Sink()
        t.install_tracer(sink)
        sim.run_for(10.0)  # move the clock off zero first
        t.call_from(2, 1, "ping")
        sim.run()
        assert sink.events == [(2, 1, "ping", "rpc", 10.0, 13.0, "ok")]


class TestCastPlane:
    def test_cast_delivers_one_way(self):
        sim, t = _transport()
        t.cast_from(2, 1, "note", "hello")
        assert t._nodes[1].casts == []
        sim.run()
        assert t._nodes[1].casts == ["hello"]
        assert t.messages_sent == 1
        assert sim.now == 1.0  # a single one-way leg

    def test_cast_to_dead_target_is_silently_eaten(self):
        sim, t = _transport()
        t.cast(99, "note", "void")
        sim.run()
        assert t.messages_sent == 1  # charged; nobody to deliver to


class TestCoroutineDriver:
    def test_spawn_runs_to_completion(self):
        sim, t = _transport()

        def proto():
            pong = yield Call(1, "ping")
            total = yield Call(2, "add", 3, b=4)
            return (pong, total)

        future = t.spawn(proto())
        assert not future.done
        result = drive(sim, future)
        assert result == ("pong", 7)

    def test_timeout_thrown_into_coroutine(self):
        sim, t = _transport(timeout=4.0)

        def proto():
            try:
                yield Call(99, "ping")
            except RpcTimeout:
                return "survived"
            return "unreachable"

        assert drive(sim, t.spawn(proto())) == "survived"

    def test_coroutine_error_recorded_never_raised_into_the_run(self):
        sim, t = _transport()

        def proto():
            yield Call(1, "ping")
            raise ValueError("protocol bug")

        errors = []
        future = t.spawn(proto(), on_error=errors.append)
        sim.run()  # must not raise out of the event loop
        assert future.done
        assert isinstance(future.error, ValueError)
        assert len(errors) == 1
        with pytest.raises(ValueError):
            future.value()

    def test_yielding_non_call_fails_the_future(self):
        sim, t = _transport()

        def proto():
            yield "not a call"

        future = t.spawn(proto())
        assert future.done
        assert isinstance(future.error, TypeError)

    def test_drive_raises_when_sim_drains_pending(self):
        sim, t = _transport()
        with pytest.raises(RuntimeError):
            drive(sim, Future())


class TestFutureCell:
    def test_resolves_once(self):
        f = Future()
        f.resolve(1)
        f.resolve(2)
        assert f.value() == 1

    def test_done_callback_fires_on_settle_and_immediately_after(self):
        f = Future()
        seen = []
        f.add_done_callback(lambda fut: seen.append(fut.result))
        f.resolve("x")
        f.add_done_callback(lambda fut: seen.append(fut.result))
        assert seen == ["x", "x"]
