"""Critical-path analysis: unit decomposition plus end-to-end coverage.

The end-to-end tests are the acceptance bar: on both message-level
backends, a traced smoke scenario must reconstruct >=99% of every
request's measured latency from its span tree, and the hop profiles
must account for every lookup the engine executed.
"""

from __future__ import annotations

import pytest

from repro.obs.critical_path import SEGMENTS, HopProfile, analyze
from repro.obs.tracer import Tracer
from repro.scenarios import preset, run_scenario
from repro.service.request import RequestStatus, SampleRequest, SampleResponse
from repro.dht.api import PeerRef


class _Cost:
    h_calls = 2
    next_calls = 0
    messages = 10
    latency = 8.0


class _Execution:
    trials = 4
    dispatches = 1
    cost = _Cost()
    peers = ()


def _served_tracer(queue=4.0, backoff=1.0, overhead=2.0, routing=6.0):
    """A hand-built lifecycle: queue (incl. one cooldown) then service."""
    tracer = Tracer("all")
    tracer.begin_request(0, 0.0)
    tracer.record_admission(0, 0, True, 0.0)
    tracer.record_backoff([0], start=1.0, cooldown=backoff, attempt=1)
    dispatched = queue
    service = overhead + routing
    ctx = tracer.begin_batch(
        [SampleRequest(request_id=0, arrival_time=0.0)], 0, dispatched
    )
    tracer.end_batch(ctx, dispatched, _Execution(), service, overhead, routing)
    tracer.finish_requests(
        [
            SampleResponse(
                request_id=0,
                status=RequestStatus.OK,
                shard_id=0,
                peer=PeerRef(peer_id=3, point=0.1),
                queue_latency=queue,
                service_latency=service,
                completion_time=queue + service,
                batch_size=1,
            )
        ],
        ctx,
    )
    return tracer


class TestDecomposition:
    def test_exact_segments(self):
        report = analyze(_served_tracer())
        (r,) = report.requests
        assert r.total == pytest.approx(12.0)
        assert r.queue == pytest.approx(3.0)  # 4.0 wait minus 1.0 cooldown
        assert r.backoff == pytest.approx(1.0)
        assert r.overhead == pytest.approx(2.0)
        assert r.routing == pytest.approx(6.0)
        assert r.reconstructed_fraction == pytest.approx(1.0)
        assert r.batch_size == 1

    def test_rejected_request_is_fully_covered(self):
        tracer = Tracer("all")
        tracer.begin_request(0, 5.0)
        tracer.record_admission(0, 0, False, 5.0)
        report = analyze(tracer)
        (r,) = report.requests
        assert r.status == "rejected"
        assert r.total == 0.0
        assert r.reconstructed_fraction == 1.0

    def test_report_aggregates(self):
        report = analyze(_served_tracer())
        totals = report.segment_totals
        assert set(totals) == set(SEGMENTS)
        fractions = report.segment_fractions
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert report.min_reconstructed == pytest.approx(1.0)
        assert report.mean_total == pytest.approx(12.0)
        record = report.to_record()
        assert record["requests"] == 1
        assert record["slowest"][0]["request_id"] == 0

    def test_empty_report(self):
        report = analyze(Tracer("all"))
        assert report.min_reconstructed == 1.0
        assert report.mean_total == 0.0
        assert sum(report.segment_fractions.values()) == 0.0


class TestHopProfile:
    def test_observe_and_buckets(self):
        profile = HopProfile("chord")
        profile.observe(3, 6.0, True)
        profile.observe(3, 8.0, True)
        profile.observe(5, 15.0, False)
        assert profile.lookups == 3
        assert profile.failed == 1
        assert profile.mean_hops == pytest.approx(11 / 3)
        assert profile.mean_latency == pytest.approx(29 / 3)
        record = profile.to_record()
        assert record["by_hops"]["3"] == {
            "count": 2, "latency": 14.0, "mean_latency": 7.0,
        }

    def test_bucket_counts_sum_to_lookups(self):
        tracer = Tracer("all")
        tracer.begin_request(0, 0.0)
        ctx = tracer.begin_batch(
            [SampleRequest(request_id=0, arrival_time=0.0)], 0, 0.0
        )
        for hops in (2, 2, 4):
            tracer.on_lookup("kademlia", hops, hops * 2, float(hops), True)
        tracer.end_batch(ctx, 0.0, _Execution(), 8.0, 2.0, 6.0)
        report = analyze(tracer)
        profile = report.hop_profiles["kademlia"]
        assert sum(c for c, _ in profile.by_hops.values()) == profile.lookups == 3


@pytest.mark.parametrize("backend", ["chord", "kademlia"], scope="class")
class TestEndToEnd:
    """The acceptance bar, per message-level backend."""

    @pytest.fixture(scope="class")
    def traced(self, backend):
        tracer = Tracer("all")
        result = run_scenario(
            preset("smoke", backend=backend, n=24, requests=60, seed=5),
            tracer=tracer,
        )
        return result, tracer, analyze(tracer)

    def test_every_request_traced(self, traced, backend):
        result, tracer, report = traced
        assert len(report.requests) == result.completed + result.rejected

    def test_reconstruction_floor(self, traced, backend):
        _result, _tracer, report = traced
        assert report.min_reconstructed >= 0.99

    def test_segment_fractions_partition(self, traced, backend):
        _result, _tracer, report = traced
        fractions = report.segment_fractions
        assert set(fractions) == set(SEGMENTS)
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert fractions["routing"] > 0.0

    def test_hop_profile_matches_backend(self, traced, backend):
        _result, _tracer, report = traced
        profile = report.hop_profiles[backend]
        assert profile.lookups > 0
        assert sum(c for c, _ in profile.by_hops.values()) == profile.lookups
        assert profile.mean_hops > 0.0

    def test_slowest_is_sorted(self, traced, backend):
        _result, _tracer, report = traced
        totals = [r.total for r in report.slowest(10)]
        assert totals == sorted(totals, reverse=True)

    def test_registries_attached_after_run(self, traced, backend):
        _result, tracer, _report = traced
        assert "service" in tracer.registries
        transports = [n for n in tracer.registries if n.endswith(".transport")]
        assert transports
        for name in transports:
            counters = tracer.registries[name].counters()
            per_method = {
                k: v for k, v in counters.items() if k.startswith("messages.")
            }
            assert per_method
            assert sum(per_method.values()) > 0
