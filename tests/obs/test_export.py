"""Tests for the span/metric exporters (JSONL, Chrome, Prometheus)."""

from __future__ import annotations

import json

from repro.obs.export import (
    CHROME_TICK_US,
    chrome_trace,
    prometheus_text,
    span_records,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.tracer import Tracer
from repro.sim.metrics import MetricsRegistry


def _sample_tracer() -> Tracer:
    tracer = Tracer("all")
    tracer.begin_request(0, 1.0)
    tracer.record_admission(0, 0, True, 1.0, queue_depth=3)
    ctx = tracer.begin_batch([], 0, 0.0)  # no sampled members -> None
    assert ctx is None
    return tracer


class TestJsonl:
    def test_span_records_match_spans(self):
        tracer = _sample_tracer()
        records = span_records(tracer)
        assert len(records) == len(tracer.spans())
        assert {r["kind"] for r in records} == {"request", "admission"}

    def test_write_jsonl_round_trips(self, tmp_path):
        tracer = _sample_tracer()
        path = write_jsonl(tracer, tmp_path / "sub" / "trace.jsonl")
        lines = path.read_text().splitlines()
        parsed = [json.loads(line) for line in lines]
        assert parsed == span_records(tracer)
        # sorted keys -> stable, diff-able output
        assert lines[0] == json.dumps(parsed[0], sort_keys=True)

    def test_record_schema(self):
        (record, *_rest) = span_records(_sample_tracer())
        assert set(record) == {
            "span_id", "trace_id", "parent_id", "name", "kind",
            "start", "end", "duration", "clock", "attrs",
        }


class TestChromeTrace:
    def test_metadata_names_both_clocks(self):
        doc = chrome_trace(_sample_tracer())
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {e["args"]["name"] for e in meta} == {"sim clock", "latency clock"}
        assert {e["pid"] for e in meta} == {1, 2}

    def test_complete_events_scale_and_thread(self):
        tracer = _sample_tracer()
        doc = chrome_trace(tracer)
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(events) == len(tracer.spans())
        root = events[0]
        assert root["ts"] == 1.0 * CHROME_TICK_US
        assert root["tid"] == 0  # trace id becomes the thread
        assert root["pid"] == 1  # sim clock

    def test_none_attrs_are_dropped(self):
        tracer = Tracer("all")
        tracer.begin_request(0, 0.0)
        trace = tracer.traces()[0]
        trace.root.attrs["peer"] = None
        (root_event,) = [
            e for e in chrome_trace(tracer)["traceEvents"] if e["ph"] == "X"
        ]
        assert "peer" not in root_event["args"]

    def test_write_is_valid_json(self, tmp_path):
        path = write_chrome_trace(_sample_tracer(), tmp_path / "t.json")
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"


class TestPrometheus:
    def _registry(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("requests.completed").increment(5)
        hist = reg.histogram("latency.total")
        for v in range(1, 101):
            hist.observe(float(v))
        return reg

    def test_single_registry_no_origin(self):
        text = prometheus_text(self._registry())
        assert "# TYPE repro_requests_completed counter" in text
        assert "repro_requests_completed 5" in text
        assert 'origin=' not in text
        assert text.endswith("\n")

    def test_histogram_summary_quantiles(self):
        text = prometheus_text(self._registry())
        assert "# TYPE repro_latency_total summary" in text
        assert 'repro_latency_total{quantile="0.5"} 50.0' in text
        assert 'repro_latency_total{quantile="0.999"} 100.0' in text
        assert "repro_latency_total_count 100" in text
        # _sum = mean * count = 50.5 * 100
        assert "repro_latency_total_sum 5050.0" in text

    def test_dict_adds_origin_labels(self):
        text = prometheus_text({"service": self._registry()})
        assert 'repro_requests_completed{origin="service"} 5' in text
        assert 'origin="service",quantile="0.5"' in text

    def test_type_line_emitted_once_across_origins(self):
        text = prometheus_text({"a": self._registry(), "b": self._registry()})
        assert text.count("# TYPE repro_requests_completed counter") == 1

    def test_name_sanitization(self):
        reg = MetricsRegistry()
        reg.counter("messages.find-successor").increment()
        text = prometheus_text(reg)
        assert "repro_messages_find_successor 1" in text

    def test_namespace_override(self):
        reg = MetricsRegistry()
        reg.counter("x").increment()
        assert "myapp_x 1" in prometheus_text(reg, namespace="myapp")
