"""Tests for the span tracer: policies, lifecycles, the active guard."""

from __future__ import annotations

import pytest

from repro.dht.api import PeerRef
from repro.obs.spans import CLOCK_LATENCY, CLOCK_SIM, Span
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    SampleAll,
    SampleOneInK,
    SlowestReservoir,
    Tracer,
    parse_policy,
)
from repro.service.request import RequestStatus, SampleRequest, SampleResponse


def _request(request_id: int, arrival: float = 0.0) -> SampleRequest:
    return SampleRequest(request_id=request_id, arrival_time=arrival)


def _response(
    request_id: int,
    *,
    status=RequestStatus.OK,
    shard_id: int = 0,
    queue: float = 2.0,
    service: float = 3.0,
    completion: float = 5.0,
    batch_size: int = 2,
) -> SampleResponse:
    peer = PeerRef(peer_id=7, point=0.5) if status is RequestStatus.OK else None
    return SampleResponse(
        request_id=request_id,
        status=status,
        shard_id=shard_id,
        peer=peer,
        queue_latency=queue,
        service_latency=service if status is RequestStatus.OK else 0.0,
        completion_time=completion,
        batch_size=batch_size,
    )


class _StubCost:
    h_calls = 4
    next_calls = 0
    messages = 20
    latency = 12.0


class _StubExecution:
    trials = 6
    dispatches = 2
    cost = _StubCost()
    peers = ()


class TestPolicies:
    def test_parse_all(self):
        assert isinstance(parse_policy("all"), SampleAll)
        assert isinstance(parse_policy(" ALL "), SampleAll)

    def test_parse_one_in_k(self):
        policy = parse_policy("1-in-8")
        assert isinstance(policy, SampleOneInK)
        assert policy.k == 8

    def test_parse_slowest(self):
        policy = parse_policy("slowest:64")
        assert isinstance(policy, SlowestReservoir)
        assert policy.capacity == 64

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError):
            parse_policy("every-other")

    def test_one_in_k_is_modular_over_admission_order(self):
        policy = SampleOneInK(3)
        # decisions depend on call order, not request ids
        assert [policy.admit(i * 10) for i in range(7)] == [
            True, False, False, True, False, False, True,
        ]

    def test_one_in_k_validates(self):
        with pytest.raises(ValueError):
            SampleOneInK(0)

    def test_slowest_admits_everything(self):
        policy = SlowestReservoir(2)
        assert all(policy.admit(i) for i in range(5))

    def test_slowest_validates(self):
        with pytest.raises(ValueError):
            SlowestReservoir(0)


class TestNullTracer:
    def test_guards_are_false(self):
        assert NullTracer.enabled is False
        assert NullTracer.active is False
        assert NULL_TRACER.enabled is False

    def test_all_hooks_are_noops(self):
        t = NullTracer()
        assert t.begin_request(0, 0.0) is None
        assert t.record_admission(0, 0, True, 0.0) is None
        assert t.begin_batch([], 0, 0.0) is None
        t.end_batch(None, 0.0, None, 0.0, 0.0, 0.0)
        t.fail_batch(None, 0.0)
        t.record_backoff([], 0.0, 1.0, 1)
        t.on_round(0, 1, 1)
        t.on_rpc(None, 1, "m", "rpc", 0.0, 1.0, "ok")
        t.on_lookup("chord", 1, 2, 3.0, True)
        t.finish_requests([])
        t.attach_registry("x", object())


class TestRequestLifecycle:
    def test_begin_creates_root_span(self):
        tracer = Tracer("all")
        trace_id = tracer.begin_request(0, 1.5)
        assert trace_id == 0
        assert tracer.trace_of(0) == trace_id
        (trace,) = tracer.traces()
        assert trace.root.name == "request"
        assert trace.root.start == 1.5

    def test_unsampled_request_returns_none(self):
        tracer = Tracer("1-in-2")
        assert tracer.begin_request(0, 0.0) is not None
        assert tracer.begin_request(1, 0.0) is None
        assert tracer.unsampled == 1
        assert tracer.trace_of(1) is None

    def test_rejection_closes_the_trace(self):
        tracer = Tracer("all")
        tracer.begin_request(0, 2.0)
        tracer.record_admission(0, 1, False, 2.0, queue_depth=256)
        assert tracer.trace_of(0) is None
        (trace,) = tracer.finished
        assert trace.root.attrs["status"] == "rejected"
        admission = [s for s in trace.spans if s.kind == "admission"]
        assert admission and admission[0].attrs["queue_depth"] == 256
        assert admission[0].attrs["admitted"] is False

    def test_finish_builds_queue_and_service_spans(self):
        tracer = Tracer("all")
        tracer.begin_request(0, 0.0)
        tracer.record_admission(0, 0, True, 0.0)
        ctx = tracer.begin_batch([_request(0)], shard_id=0, now=2.0)
        tracer.end_batch(ctx, 2.0, _StubExecution(), 3.0, overhead=2.0, routing=1.0)
        tracer.finish_requests([_response(0)], ctx)
        (trace,) = tracer.finished
        kinds = {s.kind for s in trace.spans}
        assert {"request", "admission", "queue", "service"} <= kinds
        service = next(s for s in trace.spans if s.kind == "service")
        assert service.start == 2.0 and service.end == 5.0
        assert service.attrs["batch"] == ctx.trace_id
        assert service.attrs["peer"] == 7
        assert trace.root.attrs["status"] == "ok"

    def test_failed_request_has_no_service_span(self):
        tracer = Tracer("all")
        tracer.begin_request(0, 0.0)
        tracer.record_admission(0, 0, True, 0.0)
        tracer.finish_requests(
            [_response(0, status=RequestStatus.FAILED, queue=5.0, completion=5.0)]
        )
        (trace,) = tracer.finished
        assert trace.root.attrs["status"] == "failed"
        assert not [s for s in trace.spans if s.kind == "service"]
        assert [s for s in trace.spans if s.kind == "queue"]


class TestBatchLifecycle:
    def _tracer_with_members(self, ids=(0, 1)):
        tracer = Tracer("all")
        for request_id in ids:
            tracer.begin_request(request_id, 0.0)
        return tracer

    def test_batch_without_sampled_members_is_skipped(self):
        tracer = Tracer("1-in-2")
        tracer.begin_request(0, 0.0)  # sampled
        assert tracer.begin_request(1, 0.0) is None
        ctx = tracer.begin_batch([_request(1)], shard_id=0, now=1.0)
        assert ctx is None
        assert tracer.active is False

    def test_active_exactly_while_dispatching(self):
        tracer = self._tracer_with_members()
        assert tracer.active is False
        ctx = tracer.begin_batch([_request(0), _request(1)], shard_id=0, now=1.0)
        assert tracer.active is True
        tracer.end_batch(ctx, 1.0, _StubExecution(), 3.0, overhead=2.0, routing=1.0)
        assert tracer.active is False

    def test_fail_batch_clears_active_and_records_error(self):
        tracer = self._tracer_with_members()
        ctx = tracer.begin_batch([_request(0)], shard_id=0, now=1.0)
        tracer.fail_batch(ctx, 1.0, "routing hole")
        assert tracer.active is False
        assert tracer.batches[ctx.trace_id].root.attrs["error"] == "routing hole"

    def test_end_batch_partitions_service_time(self):
        tracer = self._tracer_with_members()
        ctx = tracer.begin_batch([_request(0)], shard_id=3, now=10.0)
        tracer.end_batch(ctx, 10.0, _StubExecution(), 5.0, overhead=2.0, routing=3.0)
        trace = tracer.batches[ctx.trace_id]
        assert trace.root.end == 15.0
        overhead = next(s for s in trace.spans if s.kind == "overhead")
        routing = next(s for s in trace.spans if s.kind == "routing")
        assert (overhead.start, overhead.end) == (10.0, 12.0)
        assert (routing.start, routing.end) == (12.0, 15.0)
        assert trace.root.attrs["messages"] == 20

    def test_hooks_append_only_while_active(self):
        tracer = self._tracer_with_members()
        tracer.on_rpc(1, 2, "find_successor", "rpc", 0.0, 1.0, "ok")
        tracer.on_lookup("chord", 3, 8, 6.0, True)
        tracer.on_round(0, 10, 4)
        assert tracer.spans() == [t.root for t in tracer.traces()]
        ctx = tracer.begin_batch([_request(0)], shard_id=0, now=1.0)
        tracer.on_rpc(1, 2, "find_successor", "rpc", 0.0, 1.0, "lost")
        tracer.on_lookup("chord", 3, 8, 6.0, True)
        tracer.on_round(0, 10, 4, cost=None)
        trace = tracer.batches[ctx.trace_id]
        kinds = [s.kind for s in trace.spans]
        assert kinds.count("rpc") == 1 and kinds.count("lookup") == 1
        assert kinds.count("round") == 1
        rpc = next(s for s in trace.spans if s.kind == "rpc")
        assert rpc.clock == CLOCK_LATENCY
        assert rpc.attrs["outcome"] == "lost"
        lookup = next(s for s in trace.spans if s.kind == "lookup")
        assert lookup.attrs["hops"] == 3

    def test_record_backoff_spans_open_traces_only(self):
        tracer = Tracer("1-in-2")
        tracer.begin_request(0, 0.0)
        tracer.begin_request(1, 0.0)  # unsampled
        tracer.record_backoff([0, 1], start=4.0, cooldown=2.5, attempt=1)
        trace = tracer.traces()[0]
        backoffs = [s for s in trace.spans if s.kind == "backoff"]
        assert len(backoffs) == 1
        assert (backoffs[0].start, backoffs[0].end) == (4.0, 6.5)


class TestSlowestRetention:
    def test_evicts_fastest_deterministically(self):
        tracer = Tracer("slowest:2")
        durations = {0: 5.0, 1: 1.0, 2: 3.0}
        for request_id, duration in durations.items():
            tracer.begin_request(request_id, 0.0)
            tracer.record_admission(request_id, 0, True, 0.0)
            tracer.finish_requests(
                [_response(request_id, queue=0.0, service=duration,
                           completion=duration)]
            )
        kept = sorted(t.request_id for t in tracer.finished)
        assert kept == [0, 2]  # request 1 (fastest) evicted


class TestSummaryAndViews:
    def test_summary_counts(self):
        tracer = Tracer("1-in-2")
        for request_id in range(4):
            tracer.begin_request(request_id, 0.0)
        tracer.record_admission(0, 0, True, 0.0)
        tracer.finish_requests([_response(0)])
        s = tracer.summary()
        assert s["policy"] == "1-in-2"
        assert s["requests_traced"] == 1
        assert s["requests_unsampled"] == 2
        assert s["requests_seen"] == 4  # 1 finished + 2 unsampled + 1 open

    def test_span_ids_are_unique(self):
        tracer = Tracer("all")
        for request_id in range(3):
            tracer.begin_request(request_id, 0.0)
            tracer.record_admission(request_id, 0, True, 0.0)
        ids = [s.span_id for s in tracer.spans()]
        assert len(ids) == len(set(ids))


class TestSpan:
    def test_duration_and_record(self):
        span = Span(
            span_id=1, trace_id=2, parent_id=None, name="x", kind="rpc",
            start=1.0, end=3.5, clock=CLOCK_SIM, attrs={"a": 1},
        )
        assert span.duration == 2.5
        record = span.to_record()
        assert record["span_id"] == 1
        assert record["duration"] == 2.5
        assert record["attrs"] == {"a": 1}
