"""Tracing must never perturb a seeded run: the zero-overhead-off bar.

Two layers of protection:

1. **Pinned outputs.**  The exact numbers below were captured on the
   commit *before* the observability subsystem existed (and verified
   identical under ``REPRO_PURE_PYTHON=1``).  An untraced run today must
   still reproduce them bit-for-bit -- instrumentation that shifted a
   single RNG draw or reassociated one float add would show up here.
2. **Traced == untraced.**  Running the same seed with a full tracer
   attached must produce the identical result record.  The tracer
   consumes no RNG and mirrors (never replaces) the float accumulations
   it observes, so the only output allowed to differ is the trace.

``benchmarks/bench_obs.py`` enforces the same identity in-run against a
monkeypatched pre-PR "bare" transport, plus the <=2% wall-clock bound.
"""

from __future__ import annotations

import pytest

from repro.obs.tracer import Tracer
from repro.scenarios import preset, run_scenario
from repro.service.core import build_load, build_service

# -- pre-PR pinned outputs (see module docstring) -----------------------

SCENARIO_PINS = {
    "chord": {
        "completed": 80,
        "failed": 0,
        "rejected": 0,
        "dispatch_failures": 0,
        "churn_events": 15,
        "sim_time": 152.1014555661775,
        "shard_messages": [138556, 99027],
        "shard_draws": [33, 47],
        "latency_p50": 38.383457069543866,
        "latency_p95": 94.04636734239598,
        "latency_mean": 41.80300802215682,
    },
    "kademlia": {
        "completed": 80,
        "failed": 0,
        "rejected": 0,
        "dispatch_failures": 0,
        "churn_events": 15,
        "sim_time": 152.1014555661775,
        "shard_messages": [137324, 102013],
        "shard_draws": [33, 47],
        "latency_p50": 40.03688196549322,
        "latency_p95": 92.81436734239595,
        "latency_mean": 41.876808022156794,
    },
}

SERVICE_PIN = {
    "completed": 200,
    "first_peers": [235, 183, 190, 70, 255, 144, 100, 47, 116, 68],
    "peer_checksum": 30444,
    "final_time": 154.67664398563153,
    "total_latency_mean": 51.795256512337374,
}


def _scenario_fields(result) -> dict:
    rec = result.to_record()
    return {
        "completed": rec["completed"],
        "failed": rec["failed"],
        "rejected": rec["rejected"],
        "dispatch_failures": rec["dispatch_failures"],
        "churn_events": rec["churn_events"],
        "sim_time": rec["sim_time"],
        "shard_messages": [s["messages"] for s in rec["shards"]],
        "shard_draws": [s["draws"] for s in rec["shards"]],
        "latency_p50": rec["latency"]["p50"],
        "latency_p95": rec["latency"]["p95"],
        "latency_mean": rec["latency"]["mean"],
    }


def _run(backend: str, tracer=None):
    spec = preset("smoke", backend=backend, n=24, requests=80, seed=5)
    return run_scenario(spec, tracer=tracer)


def _fingerprint(result) -> dict:
    rec = result.to_record()
    rec.pop("wall_seconds", None)
    return rec


def _service_fields(tracer=None) -> dict:
    kwargs = {} if tracer is None else {"tracer": tracer}
    service = build_service(n=300, shards=2, substrate="ideal", seed=11, **kwargs)
    load = build_load(service, rate=2.0, total=200, seed=11)
    load.start()
    service.run()
    completed = service.completed
    return {
        "completed": len(completed),
        "first_peers": [r.peer.peer_id for r in completed[:10]],
        "peer_checksum": sum(r.peer.peer_id for r in completed) % (1 << 31),
        "final_time": service.sim.now,
        "total_latency_mean": service.summary()["latency"]["total_latency"]["mean"],
    }


@pytest.mark.parametrize("backend", sorted(SCENARIO_PINS))
class TestScenarioPins:
    def test_untraced_matches_pre_instrumentation_pin(self, backend):
        assert _scenario_fields(_run(backend)) == SCENARIO_PINS[backend]

    def test_traced_run_is_bit_identical(self, backend):
        untraced = _run(backend)
        tracer = Tracer("all")
        traced = _run(backend, tracer=tracer)
        assert _fingerprint(traced) == _fingerprint(untraced)
        # and the tracer did actually record the run it shadowed
        assert tracer.summary()["requests_traced"] == untraced.completed
        assert tracer.summary()["spans"] > 0

    def test_sampling_policy_does_not_perturb(self, backend):
        tracer = Tracer("1-in-8")
        assert _scenario_fields(_run(backend, tracer=tracer)) == SCENARIO_PINS[backend]


class TestServicePin:
    def test_untraced_matches_pre_instrumentation_pin(self):
        assert _service_fields() == SERVICE_PIN

    def test_traced_run_is_bit_identical(self):
        tracer = Tracer("slowest:16")
        assert _service_fields(tracer=tracer) == SERVICE_PIN
        assert len(tracer.finished) == 16  # reservoir capacity enforced
