"""Tests for random-link overlays and adversarial robustness (motivation 3)."""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro import IdealDHT, RandomPeerSampler
from repro.apps.randlinks import (
    build_random_link_overlay,
    deletion_robustness,
)


class TestBuildOverlay:
    def test_validation(self, medium_dht, rng):
        sampler = RandomPeerSampler(medium_dht, n_hat=512.0, rng=rng)
        with pytest.raises(ValueError):
            build_random_link_overlay(sampler, 512, links_per_node=0)

    def test_structure(self, rng):
        n = 128
        dht = IdealDHT.random(n, rng)
        sampler = RandomPeerSampler(dht, n_hat=float(n), rng=rng)
        g = build_random_link_overlay(sampler, n, links_per_node=4)
        assert g.number_of_nodes() == n
        assert not any(g.has_edge(u, u) for u in g.nodes)
        # Each node initiates 4 links; undirected merging keeps degrees >= 4.
        assert all(d >= 4 for _, d in g.degree())

    def test_uniform_links_connect(self, rng):
        n = 128
        dht = IdealDHT.random(n, rng)
        sampler = RandomPeerSampler(dht, n_hat=float(n), rng=rng)
        g = build_random_link_overlay(sampler, n, links_per_node=4)
        assert nx.is_connected(g)


class TestDeletionRobustness:
    def test_validation(self):
        g = nx.path_graph(10)
        with pytest.raises(ValueError):
            deletion_robustness(g, [1.0])

    def test_zero_deletion_is_whole_graph(self):
        g = nx.cycle_graph(20)
        (point,) = deletion_robustness(g, [0.0])
        assert point.survivors == 20
        assert point.largest_component_fraction == 1.0

    def test_does_not_mutate_input(self):
        g = nx.cycle_graph(20)
        deletion_robustness(g, [0.5])
        assert g.number_of_nodes() == 20

    def test_targeted_attack_beats_random_on_hub_graph(self):
        """On a hub-heavy (star-of-stars) graph, targeted deletion is
        devastating while random deletion barely matters."""
        g = nx.barbell_graph(5, 0)
        hub = nx.star_graph(50)
        g = nx.disjoint_union(hub, hub)
        g.add_edge(0, 51)  # connect the two hubs
        targeted = deletion_robustness(g, [0.05], targeted=True)[0]
        rnd = deletion_robustness(g, [0.05], targeted=False, rng=random.Random(1))[0]
        assert targeted.largest_component_fraction < 0.6
        assert rnd.largest_component_fraction > targeted.largest_component_fraction

    def test_uniform_random_links_survive_massive_deletion(self, rng):
        n = 200
        dht = IdealDHT.random(n, rng)
        sampler = RandomPeerSampler(dht, n_hat=float(n), rng=rng)
        g = build_random_link_overlay(sampler, n, links_per_node=5)
        points = deletion_robustness(g, [0.3, 0.5], targeted=True)
        # Random 5-regular-ish graphs keep a giant component under 50%
        # targeted deletion (Motwani-Raghavan robustness motivation).
        assert points[0].largest_component_fraction > 0.9
        assert points[1].largest_component_fraction > 0.8

    def test_monotone_fractions(self, rng):
        n = 150
        dht = IdealDHT.random(n, rng)
        sampler = RandomPeerSampler(dht, n_hat=float(n), rng=rng)
        g = build_random_link_overlay(sampler, n, links_per_node=3)
        fractions = [0.0, 0.2, 0.4, 0.6]
        points = deletion_robustness(g, fractions, targeted=True)
        assert [p.deleted_fraction for p in points] == fractions
        assert all(
            points[i].survivors >= points[i + 1].survivors for i in range(len(points) - 1)
        )
