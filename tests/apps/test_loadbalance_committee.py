"""Tests for load balancing and committee sampling (motivation 2)."""

from __future__ import annotations

import math
import random

import pytest

from repro import IdealDHT, RandomPeerSampler
from repro.apps.committee import (
    CommitteeSpec,
    committee_failure_probability,
    empirical_committee_failure,
)
from repro.apps.loadbalance import (
    assign_tasks,
    one_choice_max_load_theory,
    two_choice_max_load_theory,
)
from repro.baselines.naive import NaiveSampler


class TestAssignTasks:
    def test_validation(self, medium_dht, rng):
        sampler = RandomPeerSampler(medium_dht, n_hat=512.0, rng=rng)
        with pytest.raises(ValueError):
            assign_tasks(sampler, 512, 10, choices=0)
        with pytest.raises(ValueError):
            assign_tasks(sampler, 512, -1)

    def test_conservation(self, rng):
        n = 128
        dht = IdealDHT.random(n, rng)
        sampler = RandomPeerSampler(dht, n_hat=float(n), rng=rng)
        report = assign_tasks(sampler, n, 500)
        assert sum(report.loads.values()) == 500
        assert report.max_load >= math.ceil(500 / n)

    def test_zero_tasks(self, rng):
        dht = IdealDHT.random(16, rng)
        sampler = RandomPeerSampler(dht, n_hat=16.0, rng=rng)
        assert assign_tasks(sampler, 16, 0).max_load == 0

    def test_two_choices_beat_one(self):
        n = 256
        dht = IdealDHT.random(n, random.Random(61))
        one = assign_tasks(
            RandomPeerSampler(dht, n_hat=float(n), rng=random.Random(62)), n, n
        )
        two = assign_tasks(
            RandomPeerSampler(dht, n_hat=float(n), rng=random.Random(63)),
            n, n, choices=2,
        )
        assert two.max_load <= one.max_load

    def test_uniform_beats_naive_on_max_load(self):
        """The motivation-2 claim: biased choice wrecks the balance."""
        n = 256
        tasks = 4 * n
        dht = IdealDHT.random(n, random.Random(64))
        uniform = assign_tasks(
            RandomPeerSampler(dht, n_hat=float(n), rng=random.Random(65)), n, tasks
        )
        naive = assign_tasks(NaiveSampler(dht, random.Random(66)), n, tasks)
        assert naive.max_load > uniform.max_load

    def test_one_choice_near_theory(self):
        n = 512
        dht = IdealDHT.random(n, random.Random(67))
        report = assign_tasks(
            RandomPeerSampler(dht, n_hat=float(n), rng=random.Random(68)), n, n
        )
        theory = one_choice_max_load_theory(n, n)
        assert report.max_load <= 4.0 * theory
        assert report.max_load >= 2  # collisions happen at m = n

    def test_theory_formulas(self):
        assert one_choice_max_load_theory(1, 5) == 5.0
        assert two_choice_max_load_theory(1, 5) == 5.0
        heavy = one_choice_max_load_theory(100, 10_000)
        assert heavy > 100.0  # mean plus deviation
        assert two_choice_max_load_theory(1024, 1024) < one_choice_max_load_theory(
            1024, 1024
        ) + 2.0


class TestCommitteeSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            CommitteeSpec(size=0)
        with pytest.raises(ValueError):
            CommitteeSpec(size=10, threshold=1.5)

    def test_max_byzantine_third(self):
        assert CommitteeSpec(size=30).max_byzantine == 9  # < 10 = 30/3
        assert CommitteeSpec(size=31).max_byzantine == 10


class TestFailureProbability:
    def test_no_byzantine_never_fails(self):
        spec = CommitteeSpec(size=20)
        assert committee_failure_probability(100, 0, spec) == 0.0

    def test_all_byzantine_always_fails(self):
        spec = CommitteeSpec(size=20)
        assert committee_failure_probability(100, 100, spec) == pytest.approx(1.0)

    def test_monotone_in_byzantine_count(self):
        spec = CommitteeSpec(size=25)
        probs = [committee_failure_probability(300, b, spec) for b in (30, 60, 120)]
        assert probs[0] < probs[1] < probs[2]

    def test_bigger_committees_safer_below_threshold(self):
        n, byz = 1000, 200  # 20% < 1/3
        small = committee_failure_probability(n, byz, CommitteeSpec(size=10))
        large = committee_failure_probability(n, byz, CommitteeSpec(size=100))
        assert large < small

    def test_validation(self):
        with pytest.raises(ValueError):
            committee_failure_probability(10, 11, CommitteeSpec(size=5))


class TestEmpiricalFailure:
    def test_matches_exact_under_uniform_sampling(self):
        n, byz = 200, 40
        dht = IdealDHT.random(n, random.Random(71))
        byzantine_ids = set(range(byz))  # ids are arbitrary labels
        sampler = RandomPeerSampler(dht, n_hat=float(n), rng=random.Random(72))
        spec = CommitteeSpec(size=15)
        exact = committee_failure_probability(n, byz, spec)
        empirical = empirical_committee_failure(
            sampler, lambda p: p.peer_id in byzantine_ids, spec, elections=1500
        )
        assert empirical == pytest.approx(exact, abs=0.05)

    def test_adversarial_placement_breaks_naive_sampler(self):
        """An adversary parking its peers after the longest arcs gets
        over-represented in naive-sampled committees."""
        n, byz = 200, 40
        dht = IdealDHT.random(n, random.Random(73))
        arcs = dht.circle.arcs()
        by_arc = sorted(range(n), key=lambda i: arcs[i], reverse=True)
        byzantine_ids = set(by_arc[:byz])  # adversary takes the longest arcs
        spec = CommitteeSpec(size=15)
        exact_uniform = committee_failure_probability(n, byz, spec)
        naive = NaiveSampler(dht, random.Random(74))
        empirical_naive = empirical_committee_failure(
            naive, lambda p: p.peer_id in byzantine_ids, spec, elections=1500
        )
        assert empirical_naive > 3.0 * max(exact_uniform, 1e-4)

    def test_validation(self, medium_dht, rng):
        sampler = RandomPeerSampler(medium_dht, n_hat=512.0, rng=rng)
        with pytest.raises(ValueError):
            empirical_committee_failure(sampler, lambda p: False, CommitteeSpec(5), 0)
