"""Tests for sampling-based data collection (motivation 1)."""

from __future__ import annotations

import random

import pytest

from repro import IdealDHT, RandomPeerSampler
from repro.apps.datacollection import (
    horvitz_thompson_fraction,
    poll_fraction,
    poll_mean,
)
from repro.baselines.naive import NaiveSampler, naive_selection_probabilities


def attribute_of(peer) -> float:
    """A deterministic synthetic per-peer attribute (e.g. stored bytes)."""
    return float(peer.peer_id % 10)


class TestPollFraction:
    def test_validation(self, medium_dht, rng):
        sampler = RandomPeerSampler(medium_dht, n_hat=512.0, rng=rng)
        with pytest.raises(ValueError):
            poll_fraction(sampler, lambda p: True, samples=0)

    def test_estimates_known_fraction(self, rng):
        n = 256
        dht = IdealDHT.random(n, rng)
        sampler = RandomPeerSampler(dht, n_hat=float(n), rng=rng)
        truth = sum(1 for p in dht.peers if p.peer_id % 4 == 0) / n
        est = poll_fraction(sampler, lambda p: p.peer_id % 4 == 0, samples=2000)
        assert est.estimate == pytest.approx(truth, abs=0.05)
        assert est.covers(truth)

    def test_interval_shrinks_with_samples(self, rng):
        dht = IdealDHT.random(128, rng)
        sampler = RandomPeerSampler(dht, n_hat=128.0, rng=rng)
        wide = poll_fraction(sampler, lambda p: p.peer_id < 64, samples=50)
        narrow = poll_fraction(sampler, lambda p: p.peer_id < 64, samples=2000)
        assert (narrow.high - narrow.low) < (wide.high - wide.low)


class TestPollMean:
    def test_validation(self, medium_dht, rng):
        sampler = RandomPeerSampler(medium_dht, n_hat=512.0, rng=rng)
        with pytest.raises(ValueError):
            poll_mean(sampler, attribute_of, samples=1)

    def test_estimates_known_mean(self, rng):
        n = 256
        dht = IdealDHT.random(n, rng)
        sampler = RandomPeerSampler(dht, n_hat=float(n), rng=rng)
        truth = sum(attribute_of(p) for p in dht.peers) / n
        est = poll_mean(sampler, attribute_of, samples=2000)
        assert est.estimate == pytest.approx(truth, abs=0.3)
        assert est.covers(truth)


class TestBiasAndCorrection:
    def test_naive_sampler_biases_arc_weighted_attributes(self):
        """An attribute correlated with arc length fools the naive sampler."""
        n = 256
        dht = IdealDHT.random(n, random.Random(55))
        arcs = dht.circle.arcs()
        median_arc = sorted(arcs)[n // 2]
        big_arc_ids = {i for i in range(n) if arcs[i] > median_arc}

        def has_big_arc(peer) -> bool:
            return peer.peer_id in big_arc_ids

        truth = len(big_arc_ids) / n  # 0.5 by construction
        naive = NaiveSampler(dht, random.Random(56))
        est = poll_fraction(naive, has_big_arc, samples=4000)
        # Arc-weighted sampling overcounts big-arc peers decisively.
        assert est.estimate > truth + 0.15
        # ... while the uniform sampler does not.
        uniform = RandomPeerSampler(dht, n_hat=float(n), rng=random.Random(57))
        est_u = poll_fraction(uniform, has_big_arc, samples=4000)
        assert est_u.estimate == pytest.approx(truth, abs=0.05)

    def test_horvitz_thompson_corrects_naive_bias(self):
        n = 256
        dht = IdealDHT.random(n, random.Random(58))
        arcs = naive_selection_probabilities(dht.circle)
        probs = {i: arcs[i] for i in range(n)}
        median_arc = sorted(arcs)[n // 2]
        big_arc_ids = {i for i in range(n) if arcs[i] > median_arc}
        truth = len(big_arc_ids) / n
        naive = NaiveSampler(dht, random.Random(59))
        draws = naive.sample_many(20_000)
        corrected = horvitz_thompson_fraction(
            draws, lambda p: p.peer_id in big_arc_ids, probs, population=n
        )
        assert corrected == pytest.approx(truth, abs=0.05)

    def test_horvitz_thompson_validation(self, rng):
        dht = IdealDHT.random(8, rng)
        with pytest.raises(ValueError):
            horvitz_thompson_fraction([], lambda p: True, {}, population=8)
        with pytest.raises(ValueError):
            horvitz_thompson_fraction(
                [dht.peers[0]], lambda p: True, {0: 0.0}, population=8
            )
