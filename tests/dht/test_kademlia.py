"""Kademlia substrate unit tests: XOR idspace, k-buckets, lookups,
successor certification, and the network's churn/maintenance API.

The cross-backend behaviour (h/next semantics, charges, uniformity) is
covered by the conformance suite (``tests/dht/test_conformance.py``);
these tests pin the Kademlia-specific mechanics underneath it.
"""

from __future__ import annotations

import bisect
import random

import pytest

from repro.dht.api import PeerUnreachableError
from repro.dht.kademlia import (
    KademliaLookupError_,
    KademliaNetwork,
    aligned_limit,
    bucket_index,
    bucket_range,
    xor_distance,
)
from repro.sim.churn import ChurnProcess
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry


class TestIdspace:
    def test_xor_distance_is_a_metric_on_samples(self):
        rng = random.Random(0)
        for _ in range(200):
            a, b, c = (rng.randrange(1 << 32) for _ in range(3))
            assert xor_distance(a, b) == xor_distance(b, a)
            assert xor_distance(a, a) == 0
            # XOR satisfies the stronger "unidirectional" triangle bound
            assert xor_distance(a, c) <= xor_distance(a, b) | xor_distance(b, c)

    def test_bucket_index_is_highest_differing_bit(self):
        assert bucket_index(0b1000, 0b1001) == 0
        assert bucket_index(0b1000, 0b0000) == 3
        assert bucket_index(5, 4) == 0

    def test_bucket_index_rejects_self(self):
        with pytest.raises(ValueError):
            bucket_index(7, 7)

    def test_bucket_range_is_the_sibling_block(self):
        # bucket 2 of 0b1010: flip bit 2, clear the bits below -> [0b1100, 0b1100+4)
        base, end = bucket_range(0b1010, 2)
        assert (base, end) == (0b1100, 0b1100 + 4)
        # every id in the range lands back in that bucket
        for y in range(base, end):
            if y != 0b1010:
                assert bucket_index(0b1010, y) == 2

    def test_aligned_limit_certifies_only_shared_prefix(self):
        # cur=6 (110), radius=3 -> j=1, boundary at 8
        assert aligned_limit(6, 3, m=4) == 8
        # aligned cur reaches its full 2^j block
        assert aligned_limit(8, 7, m=4) == 12
        # clamped at the top of the space
        assert aligned_limit(14, 8, m=4) == 16
        with pytest.raises(ValueError):
            aligned_limit(3, 0, m=4)

    def test_every_certified_id_is_inside_the_ball(self):
        rng = random.Random(1)
        for _ in range(300):
            m = 16
            cur = rng.randrange(1 << m)
            radius = rng.randrange(1, 1 << m)
            limit = aligned_limit(cur, radius, m)
            assert limit > cur
            for y in (cur, (cur + limit - 1) // 2, limit - 1):
                assert xor_distance(cur, y) <= radius


def small_net(n=32, m=16, k=4, seed=0, **kwargs) -> KademliaNetwork:
    return KademliaNetwork.build(n, m=m, k=k, rng=random.Random(seed), **kwargs)


class TestBuckets:
    def test_observe_respects_lru_order(self):
        net = KademliaNetwork(m=8, k=3, rng=random.Random(0))
        node = net._register(0)
        for other in (0b10000001, 0b10000010, 0b10000011):
            net._register(other)
            node.observe(other)
        i = bucket_index(0, 0b10000001)
        assert net.nodes[0].buckets[i] == [0b10000001, 0b10000010, 0b10000011]
        node.observe(0b10000001)  # seen again: moves to tail
        assert node.buckets[i] == [0b10000010, 0b10000011, 0b10000001]

    def test_full_bucket_parks_newcomer_in_replacement_cache(self):
        net = KademliaNetwork(m=8, k=2, rng=random.Random(0))
        node = net._register(0)
        members = [0b10000001, 0b10000010, 0b10000011]
        for other in members:
            net._register(other)
            node.observe(other)
        i = bucket_index(0, members[0])
        assert node.buckets[i] == members[:2]  # uptime-bias: members keep slots
        assert node.replacements[i] == [members[2]]
        assert not node.knows(members[2])

    def test_forget_promotes_from_replacement_cache(self):
        net = KademliaNetwork(m=8, k=2, rng=random.Random(0))
        node = net._register(0)
        members = [0b10000001, 0b10000010, 0b10000011]
        for other in members:
            net._register(other)
            node.observe(other)
        node.forget(members[0])
        i = bucket_index(0, members[0])
        assert members[2] in node.buckets[i]  # cache promoted
        assert node.knows(members[2]) and not node.knows(members[0])

    def test_probe_stale_evicts_dead_head_with_charged_ping(self):
        net = KademliaNetwork(m=8, k=2, rng=random.Random(0))
        node = net._register(0)
        other = net._register(0b10000001).node_id
        node.observe(other)
        net.crash_node(other)
        before = net.transport.messages_sent
        assert node.probe_stale() == 1  # evicted
        assert not node.knows(other)
        assert net.transport.messages_sent > before  # the ping was charged

    def test_find_node_observes_the_sender(self):
        net = small_net(n=8, k=4, seed=3)
        a, b = sorted(net.nodes)[:2]
        net.nodes[a].forget(b)
        net.nodes[a].find_node(0, sender_id=b)
        assert net.nodes[a].knows(b)


class TestLookups:
    def test_iterative_lookup_finds_true_k_closest(self):
        net = small_net(n=64, m=16, k=6, seed=4)
        ids = net.sorted_ids()
        entry = net.nodes[ids[0]]
        rng = random.Random(5)
        for _ in range(40):
            target = rng.randrange(1 << 16)
            out = entry.iterative_find_node(target)
            expect = sorted(ids, key=lambda i: i ^ target)[: net.k]
            assert list(out.ids) == expect
            assert out.complete

    def test_find_successor_matches_oracle_across_wrap(self):
        net = small_net(n=48, m=16, k=6, seed=6)
        ids = net.sorted_ids()
        entry = net.nodes[ids[0]]
        # targets straddling every kind of boundary, including wrap
        targets = [0, 1, (1 << 16) - 1, (1 << 15), (1 << 15) - 1]
        targets += [i + d for i in ids[::7] for d in (-1, 0, 1)]
        for t in targets:
            t %= 1 << 16
            expect = ids[bisect.bisect_left(ids, t) % len(ids)]
            result = entry.find_successor(t)
            assert result.node_id == expect, f"successor({t})"
            assert result.census[0] == result.node_id

    def test_census_is_a_consecutive_clockwise_run(self):
        net = small_net(n=64, m=16, k=8, seed=7)
        ids = net.sorted_ids()
        entry = net.nodes[ids[0]]
        result = entry.find_successor(ids[10] + 1)
        census = list(result.census)
        start = ids.index(census[0])
        assert census == [ids[(start + j) % len(ids)] for j in range(len(census))]

    def test_lookup_routes_around_dead_contacts(self):
        net = small_net(n=48, m=16, k=6, seed=8)
        ids = net.sorted_ids()
        entry = net.nodes[ids[0]]
        rng = random.Random(9)
        victims = [i for i in ids[1:]][::4]
        for v in victims:
            net.crash_node(v)
        alive = set(net.sorted_ids())
        for _ in range(20):
            t = rng.randrange(1 << 16)
            try:
                owner = entry.find_successor(t).node_id
            except KademliaLookupError_:
                continue  # retryable, acceptable mid-churn
            assert owner in alive

    def test_lookup_error_is_retryable_liveness_error(self):
        assert issubclass(KademliaLookupError_, PeerUnreachableError)


class TestNetwork:
    def test_build_perfect_tables_hold_block_minima(self):
        # the invariant the O(1) next() relies on: every non-empty bucket
        # retains its block's numerically smallest member
        net = small_net(n=64, m=16, k=4, seed=10)
        ids = net.sorted_ids()
        for node_id, node in net.nodes.items():
            for i, bucket in node.buckets.items():
                base, end = bucket_range(node_id, i)
                lo = bisect.bisect_left(ids, base)
                if lo < len(ids) and ids[lo] < end:
                    assert ids[lo] in bucket

    def test_join_node_announces_and_learns(self):
        net = small_net(n=24, m=16, k=6, seed=11)
        joiner = net.join_node()
        assert joiner.node_id in net.nodes
        # the joiner learned a neighbourhood and someone learned it
        assert joiner.contacts()
        assert any(
            node.knows(joiner.node_id)
            for node_id, node in net.nodes.items()
            if node_id != joiner.node_id
        )

    def test_leave_is_observationally_a_crash(self):
        net = small_net(n=16, m=16, k=4, seed=12)
        ids = net.sorted_ids()
        net.leave_node(ids[3])
        assert ids[3] not in net.nodes
        with pytest.raises(KeyError):
            net.leave_node(ids[3])

    def test_epoch_bumps_on_membership_and_maintenance(self):
        net = small_net(n=16, m=16, k=4, seed=13)
        e0 = net.churn_epoch
        net.join_node()
        assert net.churn_epoch > e0
        e1 = net.churn_epoch
        net.refresh_round()
        assert net.churn_epoch > e1

    def test_sorted_ids_and_points_are_epoch_cached(self):
        net = small_net(n=16, m=16, k=4, seed=14)
        first = net.sorted_ids()
        assert net.sorted_ids() is first  # cached within an epoch
        pts = net.points_array()
        assert net.points_array() is pts
        net.join_node()
        assert net.sorted_ids() is not first

    def test_refresh_recovers_routing_after_crashes(self):
        net = small_net(n=48, m=16, k=6, seed=15)
        ids = net.sorted_ids()
        for v in ids[1::4]:
            net.crash_node(v)
        rounds = 0
        while not net.routing_is_correct() and rounds < 40:
            net.refresh_round()
            rounds += 1
        assert net.routing_is_correct(), f"not converged after {rounds} rounds"

    def test_sequential_join_bootstrap_converges(self):
        net = KademliaNetwork.build(
            20, m=16, k=6, rng=random.Random(16), perfect=False
        )
        rounds = 0
        while not net.routing_is_correct() and rounds < 30:
            net.refresh_round()
            rounds += 1
        assert net.routing_is_correct()

    def test_churn_process_drives_kademlia_and_recovery(self):
        sim = Simulator()
        net = KademliaNetwork.build(24, m=16, k=6, rng=random.Random(17), sim=sim)
        net.start_periodic_maintenance(4.0)
        churn = ChurnProcess(
            net, sim, rate=0.3, rng=RngRegistry(18), target_size=24, min_size=6
        )
        churn.start()
        sim.run_for(200.0)
        churn.stop()
        counts = churn.event_counts()
        assert sum(counts.values()) > 0
        rounds = 0
        while not net.routing_is_correct() and rounds < 60:
            net.refresh_round()
            rounds += 1
        assert net.routing_is_correct()

    def test_build_dht_validates_id_space(self):
        with pytest.raises(ValueError):
            KademliaNetwork.build_dht(100, m=6)

    def test_dht_entry_failover_after_entry_crash(self):
        net = small_net(n=24, m=16, k=6, seed=19)
        dht = net.dht()
        entry = dht.entry_id
        net.crash_node(entry)
        peer = dht.h(0.5)  # lazily re-roots at the clockwise-nearest survivor
        assert peer.peer_id in net.nodes
        assert dht.entry_id != entry
        assert dht.entry_is_alive
        dht.refresh_entry(min(net.nodes))
        assert dht.entry_id == min(net.nodes)
