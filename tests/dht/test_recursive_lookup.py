"""Tests for recursive (forwarded) Chord lookups vs the iterative mode."""

from __future__ import annotations

import random

import pytest

from repro import RandomPeerSampler
from repro.dht.chord import ChordNetwork
from repro.dht.chord.node import LookupError_


@pytest.fixture
def net():
    return ChordNetwork.build(64, m=18, rng=random.Random(170))


class TestCorrectness:
    def test_recursive_agrees_with_iterative(self, net):
        rng = random.Random(171)
        it = net.dht(lookup_mode="iterative")
        rec = net.dht(lookup_mode="recursive")
        for _ in range(100):
            x = 1.0 - rng.random()
            assert it.h(x).peer_id == rec.h(x).peer_id

    def test_recursive_matches_oracle(self, net):
        rec = net.dht(lookup_mode="recursive")
        circle = net.to_circle()
        rng = random.Random(172)
        for _ in range(50):
            x = 1.0 - rng.random()
            assert rec.h(x).point == circle.successor(x)

    def test_unknown_mode_rejected(self, net):
        with pytest.raises(ValueError):
            net.dht(lookup_mode="quantum")

    def test_sampler_runs_in_recursive_mode(self, net):
        sampler = RandomPeerSampler(
            net.dht(lookup_mode="recursive"), rng=random.Random(173)
        )
        seen = {sampler.sample().peer_id for _ in range(100)}
        assert seen <= set(net.nodes)
        assert len(seen) > 20


class TestCostProfile:
    def _mean_h_cost(self, dht, draws=60, seed=174):
        rng = random.Random(seed)
        before = dht.cost.snapshot()
        for _ in range(draws):
            dht.h(1.0 - rng.random())
        delta = dht.cost.snapshot() - before
        return delta.messages / draws, delta.latency / draws

    def test_recursive_cheaper_than_iterative(self, net):
        it_msgs, it_lat = self._mean_h_cost(net.dht(lookup_mode="iterative"))
        rec_msgs, rec_lat = self._mean_h_cost(net.dht(lookup_mode="recursive"))
        # No per-hop reply leg and no owner liveness ping.
        assert rec_msgs < it_msgs
        assert rec_lat < it_lat

    def test_recursive_still_logarithmic(self):
        import math

        costs = {}
        for n in (32, 256):
            net = ChordNetwork.build(n, m=18, rng=random.Random(175))
            msgs, _ = self._mean_h_cost(net.dht(lookup_mode="recursive"))
            costs[n] = msgs
        assert costs[256] < 3.0 * costs[32]
        assert costs[256] <= 3.0 * math.log2(256)


class TestFailureBehaviour:
    def test_recursive_query_dies_on_dead_hop(self):
        """The trade-off: recursive mode cannot route around a casualty
        because the client never sees intermediate hops."""
        net = ChordNetwork.build(64, m=18, rng=random.Random(176))
        entry = net.nodes[min(net.nodes)]
        ids = net.sorted_ids()
        # Kill a far-side node and immediately look up a key it owned.
        victim = ids[len(ids) // 2]
        target_key = victim  # its own id: owned by it
        net.crash_node(victim)
        with pytest.raises(LookupError_):
            entry.lookup_recursive(target_key)
        # The iterative client, by contrast, routes to the live successor.
        result = entry.lookup(target_key)
        assert result.node_id in net.nodes

    def test_dead_owner_charges_a_full_timeout(self):
        """A stale successor pointer to a dead owner must not make the
        failed lookup cheaper than a successful one: the querier waits
        out its reply timer, so the giving-up branch charges one timeout
        tick and the full timeout interval (same model as _admit)."""
        net = ChordNetwork.build(64, m=18, rng=random.Random(178))
        ids = net.sorted_ids()
        victim = ids[len(ids) // 2]
        pred = ids[len(ids) // 2 - 1]
        net.crash_node(victim)
        t = net.transport
        elapsed_before = t.elapsed
        timeouts_before = t.metrics.counter("rpc.timeouts").value
        # The predecessor resolves the victim's own id locally ("done",
        # victim) without forwarding, so the only failure on this path
        # is the owner never answering the querier.
        with pytest.raises(LookupError_, match="never replied"):
            net.nodes[pred].lookup_recursive(victim)
        assert t.metrics.counter("rpc.timeouts").value == timeouts_before + 1
        assert t.elapsed == pytest.approx(elapsed_before + t.timeout)

    def test_budget_exhaustion(self):
        net = ChordNetwork.build(16, m=18, rng=random.Random(177))
        entry = net.nodes[min(net.nodes)]
        ids = net.sorted_ids()
        far_target = (ids[-1] + 1) % (1 << 18)
        with pytest.raises(LookupError_):
            entry.lookup_recursive(far_target, max_hops=0)
