"""Tests for the bulk DHT interface: charge_bulk, h_many, the flat
point array, and the ChordDHT per-call fallback."""

from __future__ import annotations

import random

import pytest

from repro.dht.api import BulkDHT, CostMeter, CostSnapshot, PeerRef
from repro.dht.chord import ChordNetwork
from repro.dht.ideal import IdealDHT


class TestChargeBulk:
    def test_accumulates_all_fields(self):
        meter = CostMeter()
        meter.charge_bulk(h_calls=3, next_calls=7, messages=40, latency=12.5)
        snap = meter.snapshot()
        assert snap == CostSnapshot(h_calls=3, next_calls=7, messages=40, latency=12.5)

    def test_defaults_are_noop(self):
        meter = CostMeter()
        meter.charge_bulk()
        assert meter.snapshot() == CostSnapshot()

    def test_equivalent_to_per_call_charges(self):
        per_call = CostMeter()
        for _ in range(5):
            per_call.charge_h(messages=9, latency=9.0)
        for _ in range(11):
            per_call.charge_next()
        bulk = CostMeter()
        bulk.charge_bulk(h_calls=5, next_calls=11, messages=5 * 9 + 11, latency=5 * 9.0 + 11.0)
        assert per_call.snapshot() == bulk.snapshot()


class TestIdealBulk:
    def test_satisfies_protocol(self, medium_dht):
        assert isinstance(medium_dht, BulkDHT)

    @pytest.mark.parametrize("batch", [5, 200])  # python and numpy paths
    def test_h_many_matches_scalar_h(self, batch):
        rng = random.Random(50)
        dht_a = IdealDHT.random(128, random.Random(51))
        dht_b = IdealDHT.from_points(dht_a.circle.points)
        xs = [1.0 - rng.random() for _ in range(batch)]
        assert dht_b.h_many(xs) == [dht_a.h(x) for x in xs]

    @pytest.mark.parametrize("batch", [5, 200])
    def test_h_many_cost_matches_scalar(self, batch):
        rng = random.Random(52)
        dht_a = IdealDHT.random(64, random.Random(53))
        dht_b = IdealDHT.from_points(dht_a.circle.points)
        xs = [1.0 - rng.random() for _ in range(batch)]
        for x in xs:
            dht_a.h(x)
        dht_b.h_many(xs)
        assert dht_a.cost.snapshot() == dht_b.cost.snapshot()
        assert dht_b.cost.h_calls == batch

    @pytest.mark.parametrize("batch", [5, 200])
    @pytest.mark.parametrize("bad", [0.0, 1.5, float("nan")])
    def test_h_many_validates_domain(self, medium_dht, batch, bad):
        with pytest.raises(ValueError):
            medium_dht.h_many([0.5] * (batch - 1) + [bad])

    def test_points_array_is_sorted_and_complete(self, medium_dht):
        pts = medium_dht.points_array()
        assert len(pts) == len(medium_dht)
        assert list(pts) == sorted(medium_dht.circle.points)

    def test_successor_of_index_wraps(self, medium_dht):
        n = len(medium_dht)
        assert medium_dht.successor_of_index(0) == medium_dht.peers[0]
        assert medium_dht.successor_of_index(n) == medium_dht.peers[0]
        assert medium_dht.successor_of_index(n + 3) == medium_dht.peers[3]

    def test_bulk_op_costs_match_model(self, medium_dht):
        hm, hl, nm, nl = medium_dht.bulk_op_costs()
        before = medium_dht.cost.snapshot()
        medium_dht.h(0.5)
        after_h = medium_dht.cost.snapshot() - before
        assert (after_h.messages, after_h.latency) == (hm, hl)
        before = medium_dht.cost.snapshot()
        medium_dht.next(medium_dht.any_peer())
        after_next = medium_dht.cost.snapshot() - before
        assert (after_next.messages, after_next.latency) == (nm, nl)

    def test_pure_python_bisect_path(self, medium_dht, monkeypatch):
        """With the numpy view disabled, h_many falls back to bisect."""
        xs = [1.0 - random.Random(54).random() for _ in range(200)]
        expected = [medium_dht.h(x) for x in xs]
        monkeypatch.setattr(medium_dht, "_flat_np", None)
        assert medium_dht.h_many(xs) == expected


class TestChordFallback:
    def test_not_bulk_capable(self):
        # ChordDHT batches via the lockstep engine but deliberately does
        # not satisfy BulkDHT: a live overlay has no free flat point
        # array, and its per-lookup costs are measured, not unit-priced.
        net = ChordNetwork.build(8, m=16, rng=random.Random(60))
        assert not isinstance(net.dht(), BulkDHT)

    def test_h_many_charge_identical_to_per_call_loop(self):
        # deeper equivalence coverage lives in tests/dht/test_chord_batch.py
        net = ChordNetwork.build(16, m=16, rng=random.Random(61))
        dht_a = net.dht()
        dht_b = net.dht()
        rng = random.Random(62)
        xs = [1.0 - rng.random() for _ in range(20)]
        refs_bulk = dht_a.h_many(xs)
        refs_scalar = [dht_b.h(x) for x in xs]
        assert refs_bulk == refs_scalar
        # metered as if per call: one h charge per point
        assert dht_a.cost.h_calls == len(xs)

    def test_slots_on_hot_dataclasses(self):
        for obj in (PeerRef(peer_id=0, point=0.5), CostSnapshot()):
            assert not hasattr(obj, "__dict__")
