"""The lockstep batch lookup engine: exact equivalence with scalar lookups.

The engine's contract (see :mod:`repro.dht.chord.batch`) is *replay*,
not approximation: ``h_many`` must return the identical peers, charge
the identical meter/transport amounts, and take the identical hop
counts as a loop of scalar ``h`` calls under the same seeds -- on
healthy rings, with crashed nodes still referenced by finger tables and
successor lists, and in both lookup modes.  These tests pin that
contract, plus the epoch-keyed caching it rides on.
"""

from __future__ import annotations

import random

import pytest

from repro.core.engine import BatchSampler
from repro.core.sampler import RandomPeerSampler
from repro.dht.api import BulkDHT
from repro.dht.chord import ChordNetwork
from repro.dht.chord.batch import RingSnapshot, lockstep_resolve
from repro.dht.chord.idspace import point_to_target_id
from repro.dht.chord.node import LookupError_
from repro.sim.network import UniformLatency


def build_twins(seed, n=64, m=16, crashes=0, mode="iterative", **kwargs):
    """Two identical rings (same seed): batched path vs scalar reference."""
    nets = [
        ChordNetwork.build(n, m=m, rng=random.Random(seed), **kwargs)
        for _ in range(2)
    ]
    if crashes:
        rng = random.Random(seed + 99)
        ids = list(nets[0].sorted_ids())
        victims = rng.sample([i for i in ids if i != min(ids)], crashes)
        for victim in victims:
            for net in nets:
                net.crash_node(victim)
    return nets[0].dht(lookup_mode=mode), nets[1].dht(lookup_mode=mode)


def points(k, seed):
    rng = random.Random(seed)
    return [1.0 - rng.random() for _ in range(k)]


def scalar_loop(dht, xs, tolerant=False):
    out = []
    for x in xs:
        if not tolerant:
            out.append(dht.h(x))
            continue
        try:
            out.append(dht.h(x))
        except LookupError_:
            out.append(None)
    return out


def assert_charges_equal(dht_a, dht_b):
    assert dht_a.cost.snapshot() == dht_b.cost.snapshot()
    ta, tb = dht_a._network.transport, dht_b._network.transport
    assert ta.messages_sent == tb.messages_sent
    assert ta.elapsed == tb.elapsed
    assert (
        ta.metrics.counter("rpc.calls").value
        == tb.metrics.counter("rpc.calls").value
    )
    assert (
        ta.metrics.counter("rpc.timeouts").value
        == tb.metrics.counter("rpc.timeouts").value
    )


class TestStaticEquivalence:
    # both kernels: python simulation (small) and the numpy vector lane
    @pytest.mark.parametrize("batch", [8, 200])
    @pytest.mark.parametrize("mode", ["iterative", "recursive"])
    def test_peers_and_charges_match_scalar_loop(self, batch, mode):
        dht_a, dht_b = build_twins(11, mode=mode)
        xs = points(batch, 5)
        assert dht_a.h_many(xs) == scalar_loop(dht_b, xs)
        assert_charges_equal(dht_a, dht_b)
        assert dht_a.cost.h_calls == batch
        assert dht_a.batch_stats.lockstep == batch

    @pytest.mark.parametrize("batch", [8, 200])
    def test_hop_counts_match_scalar_lookups(self, batch):
        dht_a, dht_b = build_twins(12)
        net_b = dht_b._network
        entry = net_b.nodes[dht_b.entry_id]
        targets = [point_to_target_id(x, net_b.m) for x in points(batch, 6)]
        scalar = [entry.lookup(t) for t in targets]
        transport = dht_a._network.transport
        traces = lockstep_resolve(
            dht_a._network.snapshot(),
            dht_a.entry_id,
            targets,
            mode="iterative",
            rpc_latency=2.0,
            oneway_latency=1.0,
            timeout=transport.timeout,
        )
        assert [t.owner for t in traces] == [r.node_id for r in scalar]
        assert [t.hops for t in traces] == [r.hops for r in scalar]
        assert all(t.ok for t in traces)

    def test_imperfect_ring_from_sequential_joins(self):
        # A ring built by the real join protocol has imperfect tables;
        # the replay must follow them, not an oracle route.
        dht_a, dht_b = build_twins(13, n=24, perfect=False)
        xs = points(150, 7)
        assert dht_a.h_many(xs) == scalar_loop(dht_b, xs)
        assert_charges_equal(dht_a, dht_b)

    def test_mid_batch_domain_error_matches_scalar_sequence(self):
        dht_a, dht_b = build_twins(14)
        xs = [0.5, 0.25, 1.5, 0.75]
        with pytest.raises(ValueError):
            dht_a.h_many(xs)
        with pytest.raises(ValueError):
            scalar_loop(dht_b, xs)
        # the valid prefix was served and charged before the raise
        assert dht_a.cost.h_calls == 2
        assert_charges_equal(dht_a, dht_b)

    def test_empty_and_single_point_batches(self):
        dht_a, dht_b = build_twins(15)
        assert dht_a.h_many([]) == []
        assert dht_a.h_many([0.5]) == [dht_b.h(0.5)]
        assert_charges_equal(dht_a, dht_b)

    def test_single_node_ring(self):
        net = ChordNetwork.build(1, m=8, rng=random.Random(3))
        dht = net.dht()
        xs = points(80, 8)
        refs = dht.h_many(xs)
        assert all(r.peer_id == dht.entry_id for r in refs)
        assert dht.cost.messages == 0  # the entry owns everything locally


class TestCrashedReferences:
    """Dead fingers/successors: the exact-fallback lanes of the engine."""

    @pytest.mark.parametrize("batch", [8, 200])
    @pytest.mark.parametrize("crashes", [1, 10])
    def test_iterative_routes_around_crashes_identically(self, batch, crashes):
        dht_a, dht_b = build_twins(21, n=80, crashes=crashes)
        xs = points(batch, 9)
        assert dht_a.h_many(xs) == scalar_loop(dht_b, xs)
        assert_charges_equal(dht_a, dht_b)
        # crashes leave timeouts behind -- proves the dead-hop lane ran
        assert dht_a._network.transport.metrics.counter("rpc.timeouts").value > 0

    @pytest.mark.parametrize("batch", [8, 200])
    def test_recursive_failures_are_replayed_identically(self, batch):
        # Recursive lookups cannot reroute: some fail, h retries and
        # stabilizes, and the batch must replay that exact sequence.
        dht_a, dht_b = build_twins(22, n=80, crashes=10, mode="recursive")
        xs = points(batch, 10)
        assert dht_a.resolve_many(xs) == scalar_loop(dht_b, xs, tolerant=True)
        assert_charges_equal(dht_a, dht_b)

    def test_strict_h_many_raises_like_the_scalar_loop(self):
        dht_a, dht_b = build_twins(23, n=80, crashes=10, mode="recursive")
        xs = points(200, 10)
        err_a = err_b = None
        try:
            dht_a.h_many(xs)
        except LookupError_ as exc:
            err_a = str(exc)
        try:
            scalar_loop(dht_b, xs)
        except LookupError_ as exc:
            err_b = str(exc)
        assert err_a == err_b  # either both clean or the same failure
        assert_charges_equal(dht_a, dht_b)

    def test_hop_counts_with_crashed_fingers(self):
        dht_a, dht_b = build_twins(24, n=80, crashes=8)
        net_b = dht_b._network
        entry = net_b.nodes[dht_b.entry_id]
        targets = [point_to_target_id(x, net_b.m) for x in points(150, 11)]
        transport = dht_a._network.transport
        traces = lockstep_resolve(
            dht_a._network.snapshot(),
            dht_a.entry_id,
            targets,
            mode="iterative",
            rpc_latency=2.0,
            oneway_latency=1.0,
            timeout=transport.timeout,
        )
        for trace, target in zip(traces, targets):
            result = entry.lookup(target)
            assert (trace.owner, trace.hops) == (result.node_id, result.hops)


class TestEligibility:
    def test_lossy_transport_disables_lockstep(self):
        net = ChordNetwork.build(16, m=16, rng=random.Random(31), loss_rate=0.2)
        dht = net.dht()
        assert not dht.lockstep_eligible()
        assert not dht.warm_lockstep()
        xs = points(8, 12)
        dht.h_many(xs)
        assert dht.batch_stats.lockstep == 0
        assert dht.batch_stats.percall == len(xs)

    def test_stochastic_latency_disables_lockstep(self):
        net = ChordNetwork.build(
            16, m=16, rng=random.Random(32), latency=UniformLatency(0.5, 1.5)
        )
        assert not net.dht().lockstep_eligible()

    def test_active_faults_disable_lockstep(self):
        # A snapshot replay cannot see partitioned edges or grey charge
        # inflation; eligibility must track the fault surface live.
        from repro.faults.state import FaultState

        net = ChordNetwork.build(16, m=16, rng=random.Random(35))
        faults = net.transport.install_faults(FaultState())
        dht = net.dht()
        assert dht.lockstep_eligible()
        faults.set_burst_loss(0.2)
        assert not dht.lockstep_eligible()
        faults.clear()
        assert dht.lockstep_eligible()

    def test_default_transport_is_eligible(self):
        net = ChordNetwork.build(16, m=16, rng=random.Random(33))
        dht = net.dht()
        assert dht.lockstep_eligible()
        assert dht.warm_lockstep()

    def test_chord_is_still_not_bulk(self):
        # BulkDHT would route trial classification through a flat point
        # array with synthetic unit costs -- wrong for a live overlay.
        net = ChordNetwork.build(8, m=16, rng=random.Random(34))
        assert not isinstance(net.dht(), BulkDHT)


class TestEpochCaching:
    def test_sorted_ids_memoized_per_epoch(self):
        net = ChordNetwork.build(16, m=16, rng=random.Random(41))
        first = net.sorted_ids()
        assert net.sorted_ids() is first  # cached within the epoch
        net.join_node()
        second = net.sorted_ids()
        assert second is not first
        assert len(second) == 17

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda net: net.join_node(),
            lambda net: net.crash_node(max(net.nodes)),
            lambda net: net.leave_node(max(net.nodes)),
            lambda net: net.stabilize_round(),
            lambda net: net.rewire_perfectly(),
        ],
        ids=["join", "crash", "leave", "stabilize", "rewire"],
    )
    def test_every_mutator_bumps_the_epoch(self, mutate):
        net = ChordNetwork.build(16, m=16, rng=random.Random(42))
        before = net.churn_epoch
        mutate(net)
        assert net.churn_epoch > before

    def test_snapshot_patched_in_place_when_epoch_moves(self):
        net = ChordNetwork.build(16, m=16, rng=random.Random(43))
        snap = net.snapshot()
        assert net.snapshot() is snap
        assert net.snapshot_builds == 1
        n_before = snap.n
        net.crash_node(max(net.nodes))
        fresh = net.snapshot()
        # Churn through the network API patches the live snapshot
        # incrementally -- no second full build.
        assert fresh is snap
        assert net.snapshot_builds == 1
        assert net.snapshot_patches >= 1
        assert fresh.n == n_before - 1
        # ... and the patched state is exactly what a rebuild would give.
        assert fresh.canonical_state() == RingSnapshot.build(net).canonical_state()

    def test_direct_mutation_forces_full_rebuild(self):
        net = ChordNetwork.build(16, m=16, rng=random.Random(47))
        snap = net.snapshot()
        some_id = net.sorted_ids()[0]
        net.nodes[some_id].successors.append(net.sorted_ids()[2])
        net.bump_epoch()  # the documented contract for direct mutation
        fresh = net.snapshot()
        assert fresh is not snap
        assert net.snapshot_builds == 2

    def test_snapshot_copies_node_state(self):
        # later in-place mutation of live lists must not leak into a
        # snapshot someone may still be holding
        net = ChordNetwork.build(8, m=16, rng=random.Random(44))
        snap = net.snapshot()
        some_id = net.sorted_ids()[0]
        saved = tuple(snap.succ_lists[snap.pos[some_id]])
        net.nodes[some_id].successors.append(12345)
        assert tuple(snap.succ_lists[snap.pos[some_id]]) == saved

    def test_stale_snapshot_never_routes_after_churn(self):
        dht_a, dht_b = build_twins(45, n=48)
        xs = points(60, 13)
        assert dht_a.h_many(xs) == scalar_loop(dht_b, xs)
        # crash a batch of nodes on both rings, no stabilization
        ids = [i for i in dht_a._network.sorted_ids() if i != dht_a.entry_id]
        for victim in random.Random(46).sample(ids, 6):
            dht_a._network.crash_node(victim)
            dht_b._network.crash_node(victim)
        xs = points(60, 14)
        assert dht_a.h_many(xs) == scalar_loop(dht_b, xs)
        assert_charges_equal(dht_a, dht_b)


class TestSuccessorOfIndex:
    def test_wraps_and_matches_ring_order(self):
        net = ChordNetwork.build(12, m=16, rng=random.Random(51))
        dht = net.dht()
        ids = net.sorted_ids()
        assert dht.successor_of_index(0).peer_id == ids[0]
        assert dht.successor_of_index(len(ids)).peer_id == ids[0]
        assert dht.successor_of_index(len(ids) + 3).peer_id == ids[3]
        before = dht.cost.snapshot()
        dht.successor_of_index(5)
        assert dht.cost.snapshot() == before  # uncharged oracle access


class TestSamplerIntegration:
    def test_trial_many_matches_scalar_trials_on_chord(self):
        dht_a, dht_b = build_twins(61, n=64)
        scalar = RandomPeerSampler(dht_b, n_hat=64.0)
        engine = BatchSampler(dht_a, params=scalar.params)
        xs = points(120, 15)
        batched = engine.trial_many(xs)
        reference = [scalar.trial(x) for x in xs]
        assert batched == reference
        assert_charges_equal(dht_a, dht_b)

    def test_sample_many_uses_lockstep_and_stays_uniform(self):
        net = ChordNetwork.build(48, m=16, rng=random.Random(62))
        dht = net.dht()
        engine = BatchSampler(dht, n_hat=48.0, rng=random.Random(63))
        peers = engine.sample_many(300)
        assert len(peers) == 300
        assert dht.batch_stats.lockstep > 0  # rounds went through h_many
        assert {p.peer_id for p in peers} <= set(net.nodes)

    def test_engine_warm_builds_the_snapshot(self):
        net = ChordNetwork.build(24, m=16, rng=random.Random(64))
        dht = net.dht()
        engine = BatchSampler(dht, n_hat=24.0)
        assert engine.warm() is True
        assert net.snapshot_builds == 1

    def test_stale_trials_counted_on_terminal_failures(self):
        # recursive mode + crashes: some resolutions fail terminally and
        # must surface as redrawn stale trials, never an exception
        dht_a, _ = build_twins(65, n=64, crashes=8, mode="recursive")
        engine = BatchSampler(dht_a, n_hat=64.0, rng=random.Random(66))
        results = engine.trial_many(points(150, 16))
        assert len(results) == 150
        failed = [r for r in results if r.peer is None]
        assert engine.stale_trials >= 0
        assert all(r.peer is None or r.peer.peer_id in dht_a._network.nodes
                   for r in results)
        # hard failures show up as EXHAUSTED, not exceptions
        assert len(failed) + sum(r.peer is not None for r in results) == 150
