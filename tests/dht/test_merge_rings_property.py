"""Property test: ring merging heals arbitrary island topologies.

A crash burst or a healed partition can leave the successor-pointer
graph as any mix of disjoint cycles ("islands") and bypassed tails.
``ChordNetwork._merge_rings`` (run inside every stabilization round)
plus pairwise stabilization must knit any such state back into the one
true ring: every successor pointer equal to the next live id clockwise,
and every successor *list* a prefix of the live clockwise order.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dht.chord.network import ChordNetwork

M = 12
ROUND_BUDGET = 12


def _wire_islands(net: ChordNetwork, islands: list[list[int]]) -> None:
    """Rewire each island into its own internally-consistent subring."""
    for island in islands:
        ring = sorted(island)
        for i, node_id in enumerate(ring):
            node = net.nodes[node_id]
            succ = ring[(i + 1) % len(ring)]
            node.predecessor = ring[(i - 1) % len(ring)]
            node.successors = [
                ring[(i + 1 + j) % len(ring)]
                for j in range(min(len(ring) - 1, node._slist_size))
            ] or [node_id]
            # Fingers kept from the pre-split ring: stale but plausible,
            # exactly what a real split leaves behind.
            assert node.get_successor() == succ if len(ring) > 1 else True


@st.composite
def island_partitions(draw):
    n = draw(st.integers(min_value=6, max_value=36))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    pieces = draw(st.integers(min_value=2, max_value=4))
    # Assign every node to one of `pieces` islands; islands may be
    # wildly unbalanced or even empty (then fewer islands exist).
    assignment = draw(
        st.lists(
            st.integers(min_value=0, max_value=pieces - 1),
            min_size=n,
            max_size=n,
        )
    )
    return n, seed, assignment


@settings(max_examples=15, deadline=None)
@given(island_partitions())
def test_merge_heals_arbitrary_islands(case):
    n, seed, assignment = case
    net = ChordNetwork.build(n, m=M, rng=random.Random(seed))
    ids = net.sorted_ids()
    islands: dict[int, list[int]] = {}
    for node_id, island in zip(ids, assignment):
        islands.setdefault(island, []).append(node_id)
    _wire_islands(net, [members for members in islands.values() if members])

    def successor_lists_consistent() -> bool:
        # Each list starts with the true clockwise run of live ids
        # (prefix property; lists may be shorter near small rings but
        # never wrong).  Lists converge a few rounds after the first
        # pointers do -- each stabilization round copies one hop deeper.
        ring = net.sorted_ids()
        for i, node_id in enumerate(ring):
            node = net.nodes[node_id]
            expected = [
                ring[(i + 1 + j) % len(ring)] for j in range(len(node.successors))
            ]
            if node.successors != expected:
                return False
        return True

    for _ in range(ROUND_BUDGET):
        net.stabilize_round()
        if net.ring_is_correct() and successor_lists_consistent():
            break
    assert net.ring_is_correct(), (
        f"ring not healed after {ROUND_BUDGET} rounds "
        f"(n={n}, seed={seed}, islands={len(islands)})"
    )
    assert successor_lists_consistent(), (
        f"successor lists diverge after {ROUND_BUDGET} rounds "
        f"(n={n}, seed={seed}, islands={len(islands)})"
    )
