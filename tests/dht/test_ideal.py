"""Tests for the ideal DHT oracle and the abstract cost interfaces."""

from __future__ import annotations


import pytest

from repro.core.intervals import clockwise_distance
from repro.dht.api import CostMeter, CostSnapshot, DHT, PeerRef
from repro.dht.ideal import CostModel, IdealDHT, LogCost


class TestCostMeter:
    def test_initial_state(self):
        meter = CostMeter()
        assert meter.snapshot() == CostSnapshot()

    def test_charge_h(self):
        meter = CostMeter()
        meter.charge_h(messages=10, latency=10.0)
        snap = meter.snapshot()
        assert snap.h_calls == 1
        assert snap.messages == 10
        assert snap.latency == 10.0

    def test_charge_next_defaults(self):
        meter = CostMeter()
        meter.charge_next()
        snap = meter.snapshot()
        assert snap.next_calls == 1
        assert snap.messages == 1
        assert snap.latency == 1.0

    def test_snapshot_diff(self):
        meter = CostMeter()
        meter.charge_h(5, 5.0)
        before = meter.snapshot()
        meter.charge_next()
        meter.charge_next()
        delta = meter.snapshot() - before
        assert delta.h_calls == 0
        assert delta.next_calls == 2
        assert delta.messages == 2

    def test_snapshot_add(self):
        a = CostSnapshot(h_calls=1, messages=3, latency=2.0)
        b = CostSnapshot(next_calls=2, messages=2, latency=2.0)
        c = a + b
        assert c == CostSnapshot(h_calls=1, next_calls=2, messages=5, latency=4.0)

    def test_reset(self):
        meter = CostMeter()
        meter.charge_h(3, 3.0)
        meter.reset()
        assert meter.snapshot() == CostSnapshot()


class TestLogCost:
    def test_log_cost_values(self):
        model = LogCost(1024)
        assert model.h_messages == 10
        assert model.h_latency == 10.0
        assert model.next_messages == 1

    def test_log_cost_small_n(self):
        assert LogCost(1).h_messages == 1
        assert LogCost(2).h_messages == 1


class TestIdealDHT:
    def test_satisfies_protocol(self, medium_dht):
        assert isinstance(medium_dht, DHT)

    def test_h_matches_circle_successor(self, medium_dht, rng):
        for _ in range(200):
            x = 1.0 - rng.random()
            peer = medium_dht.h(x)
            assert peer.point == medium_dht.circle.successor(x)

    def test_h_minimizes_clockwise_distance(self, medium_dht, rng):
        for _ in range(50):
            x = 1.0 - rng.random()
            peer = medium_dht.h(x)
            best = min(clockwise_distance(x, p) for p in medium_dht.circle)
            assert clockwise_distance(x, peer.point) == pytest.approx(best)

    def test_next_cycles_entire_ring(self, rng):
        dht = IdealDHT.random(20, rng)
        peer = dht.any_peer()
        seen = [peer.peer_id]
        for _ in range(19):
            peer = dht.next(peer)
            seen.append(peer.peer_id)
        assert sorted(seen) == list(range(20))
        assert dht.next(peer).peer_id == seen[0]  # full lap

    def test_next_moves_clockwise(self, medium_dht):
        peer = medium_dht.any_peer()
        nxt = medium_dht.next(peer)
        assert nxt.point == medium_dht.circle[peer.peer_id + 1]

    def test_costs_charged(self, rng):
        dht = IdealDHT.random(1024, rng)
        dht.h(0.5)
        dht.next(dht.any_peer())
        snap = dht.cost.snapshot()
        assert snap.h_calls == 1
        assert snap.messages == 10 + 1  # log2(1024) + 1
        assert snap.latency == 11.0

    def test_custom_cost_model(self, rng):
        model = CostModel(h_messages=3, h_latency=7.0, next_messages=2, next_latency=0.5)
        dht = IdealDHT.random(16, rng, cost_model=model)
        dht.h(0.5)
        dht.next(dht.any_peer())
        snap = dht.cost.snapshot()
        assert snap.messages == 5
        assert snap.latency == 7.5

    def test_from_points(self):
        dht = IdealDHT.from_points([0.3, 0.7])
        assert len(dht) == 2
        assert dht.h(0.5).point == 0.7

    def test_peers_sorted_and_indexed(self, medium_dht):
        for i, peer in enumerate(medium_dht.peers):
            assert peer.peer_id == i
            assert peer.point == medium_dht.circle[i]

    def test_peer_ref_ordering_and_hash(self):
        a = PeerRef(1, 0.5)
        b = PeerRef(2, 0.25)
        assert a < b  # ordered by id first
        assert len({a, b, PeerRef(1, 0.5)}) == 2
