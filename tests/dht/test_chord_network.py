"""Integration tests for ChordNetwork: bootstrap, churn, repair, adapters."""

from __future__ import annotations

import math
import random

import pytest

from repro.dht.chord import ChordNetwork
from repro.dht.chord.idspace import id_to_point


class TestBuild:
    def test_perfect_build_is_correct(self, rng):
        net = ChordNetwork.build(50, m=16, rng=rng, perfect=True)
        assert len(net) == 50
        assert net.ring_is_correct()
        assert net.predecessors_correct()

    def test_incremental_build_converges(self):
        net = ChordNetwork.build(25, m=16, rng=random.Random(8), perfect=False)
        assert net.ring_is_correct()

    def test_distinct_ids(self, rng):
        net = ChordNetwork.build(100, m=16, rng=rng)
        assert len(set(net.nodes)) == 100

    def test_rejects_silly_sizes(self, rng):
        with pytest.raises(ValueError):
            ChordNetwork.build(0, rng=rng)
        with pytest.raises(ValueError):
            ChordNetwork.build(20, m=4, rng=rng)  # 16 slots < 20 nodes

    def test_single_node_network(self, rng):
        net = ChordNetwork.build(1, m=10, rng=rng)
        assert net.ring_is_correct()
        node = next(iter(net.nodes.values()))
        assert node.get_successor() == node.node_id


class TestMembershipDynamics:
    def test_joins_then_stabilize(self):
        net = ChordNetwork.build(20, m=16, rng=random.Random(5))
        for _ in range(10):
            net.join_node()
        net.run_stabilization(8)
        assert len(net) == 30
        assert net.ring_is_correct()

    def test_crashes_then_stabilize(self):
        net = ChordNetwork.build(30, m=16, rng=random.Random(6))
        victims = list(net.nodes)[:6]
        for v in victims:
            net.crash_node(v)
        net.run_stabilization(12)
        assert len(net) == 24
        assert net.ring_is_correct()
        assert net.predecessors_correct()

    def test_graceful_leaves_keep_ring_correct_immediately(self):
        net = ChordNetwork.build(30, m=16, rng=random.Random(7))
        victims = list(net.nodes)[:5]
        for v in victims:
            net.leave_node(v)
        # Graceful departure splices without waiting for stabilization.
        assert net.ring_is_correct()

    def test_mixed_churn_storm(self):
        net = ChordNetwork.build(40, m=18, rng=random.Random(9))
        rng = random.Random(10)
        for round_ in range(15):
            action = rng.random()
            if action < 0.4:
                net.join_node()
            elif len(net) > 10:
                victim = rng.choice(list(net.nodes))
                if action < 0.7:
                    net.crash_node(victim)
                else:
                    net.leave_node(victim)
            net.run_stabilization(2)
        net.run_stabilization(10)
        assert net.ring_is_correct()

    def test_crash_unknown_node_raises(self, rng):
        net = ChordNetwork.build(5, m=16, rng=rng)
        with pytest.raises(KeyError):
            net.crash_node(999999999)

    def test_duplicate_join_rejected(self, rng):
        net = ChordNetwork.build(5, m=16, rng=rng)
        existing = next(iter(net.nodes))
        with pytest.raises(ValueError):
            net.join_node(existing)


class TestOracles:
    def test_to_circle_matches_ids(self, rng):
        net = ChordNetwork.build(20, m=16, rng=rng)
        circle = net.to_circle()
        expected = sorted(id_to_point(i, 16) for i in net.nodes)
        assert list(circle.points) == expected

    def test_overlay_graph_connected(self, rng):
        import networkx as nx

        net = ChordNetwork.build(60, m=16, rng=rng)
        g = net.overlay_graph()
        assert g.number_of_nodes() == 60
        assert nx.is_connected(g)

    def test_overlay_graph_without_fingers_is_cycle(self, rng):
        net = ChordNetwork.build(30, m=16, rng=rng)
        g = net.overlay_graph(include_fingers=False)
        assert g.number_of_edges() == 30
        assert all(d == 2 for _, d in g.degree())


class TestChordDHTAdapter:
    def test_h_matches_circle_successor(self):
        net = ChordNetwork.build(64, m=16, rng=random.Random(13))
        dht = net.dht()
        circle = net.to_circle()
        rng = random.Random(14)
        for _ in range(100):
            x = 1.0 - rng.random()
            assert dht.h(x).point == circle.successor(x)

    def test_next_matches_ring_order(self):
        net = ChordNetwork.build(32, m=16, rng=random.Random(15))
        dht = net.dht()
        ids = net.sorted_ids()
        for i, node_id in enumerate(ids):
            ref = dht._ref(node_id)
            assert dht.next(ref).peer_id == ids[(i + 1) % len(ids)]

    def test_h_cost_scales_logarithmically(self):
        costs = {}
        for n in (32, 512):
            net = ChordNetwork.build(n, m=20, rng=random.Random(16))
            dht = net.dht()
            rng = random.Random(17)
            before = dht.cost.snapshot()
            for _ in range(50):
                dht.h(1.0 - rng.random())
            delta = dht.cost.snapshot() - before
            costs[n] = delta.messages / 50
        assert costs[512] < 3.0 * costs[32]
        assert costs[512] <= 4.0 * math.log2(512)

    def test_next_is_constant_cost(self):
        net = ChordNetwork.build(128, m=16, rng=random.Random(18))
        dht = net.dht()
        ref = dht.any_peer()
        before = dht.cost.snapshot()
        for _ in range(20):
            ref = dht.next(ref)
        delta = dht.cost.snapshot() - before
        assert delta.next_calls == 20
        assert delta.messages == 40  # one request + one reply each

    def test_next_falls_back_when_peer_crashes(self):
        net = ChordNetwork.build(16, m=16, rng=random.Random(19))
        dht = net.dht()
        ids = net.sorted_ids()
        victim = ids[5]
        ref = dht._ref(victim)
        net.crash_node(victim)
        net.run_stabilization(6)
        nxt = dht.next(ref)
        assert nxt.peer_id in net.nodes
        assert nxt.peer_id == ids[6]  # successor of the dead peer's point

    def test_entry_node_failover(self):
        net = ChordNetwork.build(8, m=16, rng=random.Random(20))
        entry = min(net.nodes)
        dht = net.dht(entry_id=entry)
        net.crash_node(entry)
        net.run_stabilization(6)
        assert dht.h(0.5).peer_id in net.nodes

    def test_rejects_empty_or_bad_entry(self, rng):
        net = ChordNetwork.build(4, m=16, rng=rng)
        with pytest.raises(KeyError):
            net.dht(entry_id=123456789)

    def test_refresh_entry_rejects_dead_vantage(self):
        net = ChordNetwork.build(8, m=16, rng=random.Random(21))
        dht = net.dht()
        with pytest.raises(KeyError):
            dht.refresh_entry(entry_id=999999)

    def test_refresh_entry_reroots_proactively(self):
        net = ChordNetwork.build(8, m=16, rng=random.Random(22))
        entry = min(net.nodes)
        dht = net.dht(entry_id=entry)
        assert dht.entry_is_alive
        net.crash_node(entry)
        assert not dht.entry_is_alive
        new_entry = dht.refresh_entry()
        assert new_entry in net.nodes
        assert dht.entry_is_alive


class TestRingMerge:
    def test_orphaned_node_is_readopted(self):
        net = ChordNetwork.build(20, m=16, rng=random.Random(23))
        # orphan one node by hand: nothing in the ring points to it
        victim_id = net.sorted_ids()[7]
        victim = net.nodes[victim_id]
        victim.successors = [victim_id]
        victim.predecessor = None
        for node in net.nodes.values():
            if node is victim:
                continue
            node.successors = [s for s in node.successors if s != victim_id] or [node.node_id]
            if node.predecessor == victim_id:
                node.predecessor = None
            node.fingers = [f if f != victim_id else None for f in node.fingers]
        net.run_stabilization(8)
        assert net.ring_is_correct()

    def test_island_ring_is_merged_back(self):
        net = ChordNetwork.build(20, m=16, rng=random.Random(24))
        ids = net.sorted_ids()
        a, b = ids[3], ids[11]
        # hand-build a 2-node island: a and b only know each other
        for island, other in ((a, b), (b, a)):
            node = net.nodes[island]
            node.successors = [other]
            node.predecessor = other
            node.fingers = [None] * node.m
        for node_id, node in net.nodes.items():
            if node_id in (a, b):
                continue
            node.successors = [s for s in node.successors if s not in (a, b)] or [node_id]
            if node.predecessor in (a, b):
                node.predecessor = None
            node.fingers = [f if f not in (a, b) else None for f in node.fingers]
        assert not net.ring_is_correct()
        net.run_stabilization(10)
        assert net.ring_is_correct()


class TestSamplingOnChord:
    def test_sampler_runs_on_chord(self):
        from repro import RandomPeerSampler

        net = ChordNetwork.build(64, m=16, rng=random.Random(23))
        dht = net.dht()
        sampler = RandomPeerSampler(dht, rng=random.Random(24))
        seen = {sampler.sample().peer_id for _ in range(200)}
        assert seen <= set(net.nodes)
        assert len(seen) > 30  # a healthy spread of the 64 peers
