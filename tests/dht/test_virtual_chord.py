"""Tests for virtual-node Chord (measured balance/bandwidth trade-off)."""

from __future__ import annotations

import random
import statistics

import pytest

from repro import RandomPeerSampler
from repro.analysis.stats import max_min_ratio
from repro.dht.chord.virtual import VirtualChordNetwork


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            VirtualChordNetwork(0, 4)
        with pytest.raises(ValueError):
            VirtualChordNetwork(4, 0)

    def test_sizes(self):
        vnet = VirtualChordNetwork(10, 4, m=18, rng=random.Random(0))
        assert len(vnet) == 10
        assert len(vnet.network) == 40
        assert len(vnet.to_peer_circle()) == 40

    def test_ownership_complete_and_balanced(self):
        vnet = VirtualChordNetwork(12, 5, m=18, rng=random.Random(1))
        counts = {p: 0 for p in range(12)}
        for node_id in vnet.network.nodes:
            counts[vnet.owner_of(node_id)] += 1
        assert all(c == 5 for c in counts.values())

    def test_virtual_ring_is_correct(self):
        vnet = VirtualChordNetwork(8, 4, m=18, rng=random.Random(2))
        assert vnet.network.ring_is_correct()


class TestSampling:
    def test_physical_sampling_is_uniform(self):
        n_peers, v = 24, 4
        vnet = VirtualChordNetwork(n_peers, v, m=18, rng=random.Random(3))
        sampler = RandomPeerSampler(
            vnet.dht(), n_hat=float(n_peers * v), rng=random.Random(4)
        )
        counts = {p: 0 for p in range(n_peers)}
        draws = 3000
        for _ in range(draws):
            counts[vnet.sample_physical(sampler)] += 1
        from repro.analysis.stats import chi_square_uniform

        assert not chi_square_uniform(list(counts.values())).rejects_uniformity(
            alpha=0.001
        )

    def test_naive_balance_improves_with_v(self):
        ratios = {}
        for v in (1, 8):
            vals = [
                max_min_ratio(
                    VirtualChordNetwork(
                        40, v, m=20, rng=random.Random(seed)
                    ).selection_probabilities()
                )
                for seed in range(5)
            ]
            ratios[v] = statistics.median(vals)
        assert ratios[8] < ratios[1]


class TestMaintenanceCost:
    def test_measured_cost_scales_with_v(self):
        costs = {}
        for v in (1, 4):
            vnet = VirtualChordNetwork(16, v, m=18, rng=random.Random(5))
            costs[v] = vnet.measured_maintenance_messages(rounds=2)
        # 4x the virtual nodes => at least ~3x the measured messages.
        assert costs[4] > 3 * costs[1]

    def test_analytic_model_tracks_measurement(self):
        """The closed-form model in baselines.virtual_nodes must be within
        a small factor of the real protocol's measured cost."""
        from repro.baselines.virtual_nodes import maintenance_messages_per_round

        vnet = VirtualChordNetwork(16, 4, m=18, rng=random.Random(6))
        measured = vnet.measured_maintenance_messages(rounds=1)
        modelled = maintenance_messages_per_round(16, 4)
        assert modelled / 4 < measured < modelled * 4
