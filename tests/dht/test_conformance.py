"""The cross-backend substrate contract, run identically on every backend.

King & Saia's algorithms are written against two primitives (``h``,
``next``) plus the cost meter; every substrate -- the analytic oracle,
the Chord ring simulator, the Kademlia XOR simulator -- must implement
them with *identical semantics* so the algorithm layer stays
substrate-independent.  This module is that contract, parametrized over
all backends: lookup correctness against an oracle of the live
membership, charge accounting, bulk-vs-scalar equivalence, uniformity
of sampled peers, and unreachable-peer semantics.  Adding a backend to
:data:`BACKENDS` is how it earns its way into the repo.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass

import pytest

from repro.analysis.stats import chi_square_uniform
from repro.core.engine import BatchSampler
from repro.core.estimate import estimate_n
from repro.core.sampler import GAMMA1, GAMMA2, RandomPeerSampler
from repro.dht.api import BulkDHT, CostSnapshot, PeerRef, PeerUnreachableError
from repro.dht.chord.network import ChordNetwork
from repro.dht.chord.soa import SoAChordNetwork
from repro.dht.ideal import IdealDHT
from repro.dht.kademlia.network import KademliaNetwork
from repro.dht.kademlia.routing import SoAKademliaNetwork


@dataclass(frozen=True)
class Backend:
    """How the conformance suite builds and inspects one substrate."""

    name: str
    make: callable  # (n, seed) -> dht; same (n, seed) -> identical substrate
    live_peer_ids: callable  # (dht) -> set of live peer ids
    bulk: bool  # satisfies BulkDHT (flat-array fast path, synthetic costs)
    churnable: bool  # peers can be crashed out from under the adapter
    crash: callable = None  # (dht, peer_ids) -> None
    transported: bool = True  # has a message transport an adversary can corrupt


def _make_ideal(n, seed):
    return IdealDHT.random(n, random.Random(seed))


def _make_chord(n, seed):
    return ChordNetwork.build_dht(n, m=16, rng=random.Random(seed))


def _make_kademlia(n, seed):
    return KademliaNetwork.build_dht(n, m=16, k=8, rng=random.Random(seed))


def _make_chord_soa(n, seed):
    return SoAChordNetwork.build_dht(n, m=16, rng=random.Random(seed))


def _make_kademlia_soa(n, seed):
    return SoAKademliaNetwork.build_dht(n, m=16, k=8, rng=random.Random(seed))


def _net_ids(dht):
    return set(dht._network.nodes)


def _net_crash(dht, peer_ids):
    for peer_id in peer_ids:
        dht._network.crash_node(peer_id)


BACKENDS = {
    "ideal": Backend(
        name="ideal",
        make=_make_ideal,
        live_peer_ids=lambda dht: {p.peer_id for p in dht.peers},
        bulk=True,
        churnable=False,
        transported=False,
    ),
    "chord": Backend(
        name="chord",
        make=_make_chord,
        live_peer_ids=_net_ids,
        bulk=False,
        churnable=True,
        crash=_net_crash,
    ),
    "kademlia": Backend(
        name="kademlia",
        make=_make_kademlia,
        live_peer_ids=_net_ids,
        bulk=False,
        churnable=True,
        crash=_net_crash,
    ),
    # Struct-of-arrays substrates: same lookup/charge semantics, but the
    # state lives in flat arrays replayed by lockstep resolution rather
    # than in per-node objects behind a message transport.
    "chord-soa": Backend(
        name="chord-soa",
        make=_make_chord_soa,
        live_peer_ids=_net_ids,
        bulk=False,
        churnable=True,
        crash=_net_crash,
        transported=False,
    ),
    "kademlia-soa": Backend(
        name="kademlia-soa",
        make=_make_kademlia_soa,
        live_peer_ids=_net_ids,
        bulk=False,
        churnable=True,
        crash=_net_crash,
        transported=False,
    ),
}


@pytest.fixture(params=sorted(BACKENDS), ids=sorted(BACKENDS))
def backend(request) -> Backend:
    return BACKENDS[request.param]


def oracle_ring(backend: Backend, dht) -> list[PeerRef]:
    """The live peers in clockwise point order, from oracle knowledge.

    Built from the substrate's uncharged index oracle (every backend
    provides ``successor_of_index``), then independently point-sorted --
    so the reference for ``h``/``next`` does not depend on the routed
    lookup paths under test.
    """
    live = backend.live_peer_ids(dht)
    refs = {dht.successor_of_index(i) for i in range(len(live))}
    assert {r.peer_id for r in refs} == live
    return sorted(refs, key=lambda r: r.point)


def oracle_h(ring: list[PeerRef], x: float) -> PeerRef:
    """Reference ``h``: first peer clockwise at-or-after ``x`` (wrapping)."""
    for ref in ring:
        if ref.point >= x:
            return ref
    return ring[0]


def trial_points(k: int, seed: int) -> list[float]:
    rng = random.Random(seed)
    return [1.0 - rng.random() for _ in range(k)]


class TestLookupCorrectness:
    N = 48

    def test_h_matches_oracle_successor(self, backend):
        dht = backend.make(self.N, seed=10)
        ring = oracle_ring(backend, dht)
        for x in trial_points(80, 77):
            assert dht.h(x) == oracle_h(ring, x), f"h({x}) wrong on {backend.name}"

    def test_h_at_exact_peer_points_returns_that_peer(self, backend):
        dht = backend.make(self.N, seed=11)
        ring = oracle_ring(backend, dht)
        for ref in ring[::5]:
            assert dht.h(ref.point) == ref

    def test_h_is_idempotent(self, backend):
        dht = backend.make(self.N, seed=12)
        for x in trial_points(20, 78):
            first = dht.h(x)
            assert dht.h(first.point) == first

    def test_next_laps_the_whole_ring_in_order(self, backend):
        dht = backend.make(self.N, seed=13)
        ring = oracle_ring(backend, dht)
        start = dht.h(ring[0].point)
        walk = [start]
        for _ in range(len(ring) - 1):
            walk.append(dht.next(walk[-1]))
        assert walk == ring
        assert dht.next(walk[-1]) == start  # wraps

    def test_h_rejects_out_of_domain_points(self, backend):
        dht = backend.make(16, seed=14)
        for bad in (0.0, -0.25, 1.5):
            with pytest.raises(ValueError):
                dht.h(bad)

    def test_single_peer_network_self_loops(self, backend):
        dht = backend.make(1, seed=15)
        only = dht.any_peer()
        assert dht.h(0.5) == only
        assert dht.next(only) == only

    def test_any_peer_is_live(self, backend):
        dht = backend.make(self.N, seed=16)
        assert dht.any_peer().peer_id in backend.live_peer_ids(dht)

    def test_successor_of_index_enumerates_the_ring(self, backend):
        dht = backend.make(self.N, seed=17)
        ring = oracle_ring(backend, dht)
        enumerated = [dht.successor_of_index(i) for i in range(len(ring))]
        assert sorted(enumerated, key=lambda r: r.point) == ring
        # consecutive indices are clockwise-adjacent on the point circle
        for i in range(len(ring)):
            a = enumerated[i]
            b = enumerated[(i + 1) % len(ring)]
            idx = ring.index(a)
            assert ring[(idx + 1) % len(ring)] == b


class TestChargeAccounting:
    N = 32

    def test_h_charges_one_h_call_with_messages(self, backend):
        dht = backend.make(self.N, seed=20)
        before = dht.cost.snapshot()
        dht.h(0.42)
        delta = dht.cost.snapshot() - before
        assert delta.h_calls == 1
        assert delta.next_calls == 0
        assert delta.messages > 0
        assert delta.latency > 0

    def test_next_charges_one_next_call(self, backend):
        dht = backend.make(self.N, seed=21)
        peer = dht.h(0.42)
        before = dht.cost.snapshot()
        dht.next(peer)
        delta = dht.cost.snapshot() - before
        assert delta.next_calls == 1
        assert delta.h_calls == 0
        assert delta.messages > 0

    def test_snapshot_diff_arithmetic(self, backend):
        dht = backend.make(self.N, seed=22)
        empty = dht.cost.snapshot()
        dht.h(0.3)
        mid = dht.cost.snapshot()
        dht.h(0.6)
        end = dht.cost.snapshot()
        assert (mid - empty) + (end - mid) == end - empty
        assert end.h_calls == 2

    def test_reset_zeroes_the_meter(self, backend):
        dht = backend.make(self.N, seed=23)
        dht.h(0.5)
        dht.cost.reset()
        assert dht.cost.snapshot() == CostSnapshot()


class TestBulkEquivalence:
    """``h_many`` must match a scalar ``h`` loop in peers *and* charges."""

    N = 40
    K = 25

    def test_h_many_matches_scalar_loop(self, backend):
        bulk_dht = backend.make(self.N, seed=30)
        scalar_dht = backend.make(self.N, seed=30)  # identical twin
        xs = trial_points(self.K, 79)
        bulk_peers = bulk_dht.h_many(xs)
        scalar_peers = [scalar_dht.h(x) for x in xs]
        assert bulk_peers == scalar_peers
        assert bulk_dht.cost.snapshot() == scalar_dht.cost.snapshot()

    def test_resolve_many_matches_h_many_when_static(self, backend):
        dht = backend.make(self.N, seed=31)
        resolve_many = getattr(dht, "resolve_many", None)
        if resolve_many is None:
            pytest.skip(f"{backend.name} has no tolerant batched resolver")
        xs = trial_points(self.K, 80)
        twin = backend.make(self.N, seed=31)
        assert resolve_many(xs) == twin.h_many(xs)

    def test_bulk_protocol_classification(self, backend):
        dht = backend.make(16, seed=32)
        assert isinstance(dht, BulkDHT) == backend.bulk, (
            f"{backend.name}: live overlays must keep measured per-call "
            "costs (no BulkDHT), oracles may unit-price (BulkDHT)"
        )

    def test_batch_sampler_runs_on_every_backend(self, backend):
        dht = backend.make(self.N, seed=33)
        engine = BatchSampler(dht, rng=random.Random(5))
        peers = engine.sample_many(12)
        live = backend.live_peer_ids(dht)
        assert len(peers) == 12
        assert all(p.peer_id in live for p in peers)


class TestUniformity:
    """Sampled peers are uniform over the live membership on every backend."""

    N = 20
    DRAWS = 400

    def test_chi_square_over_live_peers(self, backend):
        dht = backend.make(self.N, seed=40)
        sampler = RandomPeerSampler(dht, rng=random.Random(41))
        counts = Counter(p.peer_id for p in sampler.sample_many(self.DRAWS))
        live = sorted(backend.live_peer_ids(dht))
        assert set(counts) <= set(live)
        chi = chi_square_uniform([counts.get(i, 0) for i in live])
        assert chi.p_value > 1e-3, (
            f"{backend.name}: sampling significantly non-uniform "
            f"(p={chi.p_value:.2e}, counts={counts})"
        )

    def test_estimate_n_lands_in_the_paper_band(self, backend):
        n = 64
        dht = backend.make(n, seed=42)
        n_hat = estimate_n(dht).n_hat
        assert GAMMA1 * n * 0.5 <= n_hat <= GAMMA2 * n * 2.0, (
            f"{backend.name}: n_hat={n_hat} far outside the Lemma 3 band"
        )


class TestUnreachableSemantics:
    """Transient liveness failures must be PeerUnreachableError, only."""

    N = 40

    def test_static_backends_never_raise(self, backend):
        dht = backend.make(self.N, seed=50)
        for x in trial_points(30, 81):
            dht.h(x)  # must not raise on a static, healthy substrate

    def test_mass_crash_yields_live_peer_or_retryable_error(self, backend):
        if not backend.churnable:
            pytest.skip(f"{backend.name} is a static oracle")
        dht = backend.make(self.N, seed=51)
        live = sorted(backend.live_peer_ids(dht))
        victims = [i for i in live if i != dht.entry_id][:: 2]
        backend.crash(dht, victims)
        survivors = backend.live_peer_ids(dht)
        for x in trial_points(40, 82):
            try:
                peer = dht.h(x)
            except PeerUnreachableError:
                continue  # the documented transient-failure escape hatch
            assert peer.peer_id in survivors, (
                f"{backend.name}: h returned crashed peer {peer.peer_id}"
            )

    def test_sampler_absorbs_crashes_as_retries(self, backend):
        if not backend.churnable:
            pytest.skip(f"{backend.name} is a static oracle")
        dht = backend.make(self.N, seed=52)
        live = sorted(backend.live_peer_ids(dht))
        sampler = RandomPeerSampler(dht, rng=random.Random(53))
        backend.crash(dht, [i for i in live if i != dht.entry_id][::3])
        survivors = backend.live_peer_ids(dht)
        drawn = [sampler.sample() for _ in range(25)]
        assert all(p.peer_id in survivors for p in drawn)


def _record_routes(dht):
    """Wrap the substrate's transport so every RPC responder is recorded.

    Returns the list the wrappers append to; each ``h`` call's contacted
    responders are the list entries added while it ran.
    """
    transport = dht._network.transport
    contacted: list[int] = []
    orig_rpc, orig_oneway = transport.rpc_from, transport.oneway_from

    def rpc_from(source_id, target_id, method, *args, **kwargs):
        contacted.append(target_id)
        return orig_rpc(source_id, target_id, method, *args, **kwargs)

    def oneway_from(source_id, target_id, method, *args, **kwargs):
        contacted.append(target_id)
        return orig_oneway(source_id, target_id, method, *args, **kwargs)

    transport.rpc_from, transport.oneway_from = rpc_from, oneway_from
    return contacted


class TestAdversarialContract:
    """Lookups under Byzantine responders: wrong answers must be attributable.

    The contract every live substrate must honor when some registered
    peers lie in their lookup replies (``AdversaryState``, strategy
    ``"lookup"``):

    - A lookup whose honest route contacts **no** Byzantine peer returns
      exactly the oracle successor -- the adapter never invents or
      launders an adversary-chosen peer on an all-honest path.
    - A lookup whose honest route does cross a Byzantine responder may
      be bent, but only to a *colluder* (or it may still reach the
      oracle answer, or raise ``PeerUnreachableError``).  It must never
      silently return some third, unrelated peer.
    - Every lookup -- truthful or deflected -- charges honestly: one
      ``h`` call with positive messages.  Lying is free for the liar;
      it is never free for the meter.

    The ideal backend has no transport to corrupt, so its contract is
    trivially "always the oracle answer"; asserting that here keeps the
    parametrization total.
    """

    N = 48
    SEED = 60
    TRIALS = 60

    def _byzantine_set(self, dht, live):
        # every fourth live peer, sparing the entry vantage
        return set(sorted(live)[::4]) - {dht.entry_id}

    def test_lookup_is_oracle_correct_or_attributably_bent(self, backend):
        from repro.adversary import AdversaryState

        honest = backend.make(self.N, seed=self.SEED)
        ring = oracle_ring(backend, honest)
        xs = trial_points(self.TRIALS, 83)

        if not backend.transported:  # no message transport to corrupt
            for x in xs:
                assert honest.h(x) == oracle_h(ring, x)
            return

        # honest twin records which responders each lookup touches
        routes = _record_routes(honest)
        honest_routes = []
        for x in xs:
            start = len(routes)
            honest.h(x)
            honest_routes.append(set(routes[start:]))

        lying = backend.make(self.N, seed=self.SEED)  # identical twin
        live = backend.live_peer_ids(lying)
        byzantine = self._byzantine_set(lying, live)
        assert byzantine and lying.entry_id not in byzantine
        adv = AdversaryState(m=16)
        for peer_id in byzantine:
            adv.mark(peer_id, "lookup")
        lying._network.transport.install_adversary(adv)

        bent = 0
        for x, route in zip(xs, honest_routes):
            before = lying.cost.snapshot()
            try:
                peer = lying.h(x)
            except PeerUnreachableError:
                continue  # honest refusal is within the contract
            delta = lying.cost.snapshot() - before
            assert delta.h_calls == 1 and delta.messages > 0, (
                f"{backend.name}: lookup under lies must still charge"
            )
            expected = oracle_h(ring, x)
            if route.isdisjoint(byzantine):
                assert peer == expected, (
                    f"{backend.name}: all-honest route for h({x}) returned "
                    f"{peer.peer_id} instead of oracle {expected.peer_id}"
                )
            else:
                assert peer == expected or peer.peer_id in byzantine, (
                    f"{backend.name}: h({x}) returned {peer.peer_id}, which "
                    "is neither the oracle successor nor a colluder"
                )
                if peer != expected:
                    bent += 1
        # the lie surface must actually have been exercised, or this
        # test would pass vacuously with the adversary disconnected.
        # (Successful deflection is NOT required: Kademlia's aligned
        # block certification legitimately outvotes lone liars, so its
        # bent count may be zero while thousands of lies were told.)
        assert adv.describe()["lies_told"] > 0, (
            f"{backend.name}: no Byzantine responder was ever consulted"
        )
        if backend.name == "chord":
            assert bent > 0, "chord: greedy routing should have been bent"

    def test_census_lies_never_corrupt_the_lookup_path(self, backend):
        from repro.adversary import AdversaryState

        if not backend.transported:
            pytest.skip(f"{backend.name} has no transport to corrupt")
        dht = backend.make(self.N, seed=self.SEED + 1)
        ring = oracle_ring(backend, dht)
        live = backend.live_peer_ids(dht)
        adv = AdversaryState(m=16)
        for peer_id in self._byzantine_set(dht, live):
            adv.mark(peer_id, "census")
        dht._network.transport.install_adversary(adv)
        for x in trial_points(30, 84):
            assert dht.h(x) == oracle_h(ring, x), (
                f"{backend.name}: census lies must only distort membership "
                "reports, never routed lookups"
            )
