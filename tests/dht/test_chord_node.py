"""Unit tests for ChordNode state machines (lookup, stabilize, repair)."""

from __future__ import annotations

import random

import pytest

from repro.dht.chord.node import ChordNode, LookupError_
from repro.sim.network import RpcTransport


def make_ring(ids, m=10, slist=4):
    """Wire a perfect little ring by hand for protocol unit tests."""
    transport = RpcTransport(rng=random.Random(0))
    nodes = {}
    ordered = sorted(ids)
    for node_id in ordered:
        node = ChordNode(node_id, m, transport, successor_list_size=slist)
        nodes[node_id] = node
        transport.register(node_id, node)
    n = len(ordered)
    for i, node_id in enumerate(ordered):
        node = nodes[node_id]
        node.successors = [ordered[(i + k + 1) % n] for k in range(min(slist, n))]
        node.predecessor = ordered[(i - 1) % n]
        for f in range(m):
            target = (node_id + (1 << f)) % (1 << m)
            import bisect

            j = bisect.bisect_left(ordered, target)
            node.fingers[f] = ordered[j % n]
    return transport, nodes


class TestBasics:
    def test_point_property(self):
        transport = RpcTransport()
        node = ChordNode(512, 10, transport)
        assert node.point == 0.5

    def test_rejects_bad_successor_list_size(self):
        with pytest.raises(ValueError):
            ChordNode(1, 10, RpcTransport(), successor_list_size=0)

    def test_initial_self_loop(self):
        node = ChordNode(5, 10, RpcTransport())
        assert node.get_successor() == 5
        assert node.get_predecessor() is None


class TestNotify:
    def test_installs_first_predecessor(self):
        node = ChordNode(100, 10, RpcTransport())
        node.notify(50)
        assert node.predecessor == 50

    def test_adopts_closer_predecessor(self):
        node = ChordNode(100, 10, RpcTransport())
        node.notify(50)
        node.notify(80)
        assert node.predecessor == 80

    def test_ignores_farther_candidate(self):
        node = ChordNode(100, 10, RpcTransport())
        node.notify(80)
        node.notify(50)
        assert node.predecessor == 80

    def test_ignores_self(self):
        node = ChordNode(100, 10, RpcTransport())
        node.notify(100)
        assert node.predecessor is None


class TestLookup:
    def test_resolves_every_target(self):
        ids = [10, 200, 400, 600, 800, 1000]
        transport, nodes = make_ring(ids)
        start = nodes[10]
        for target in range(0, 1024, 37):
            result = start.lookup(target)
            expected = min((i for i in ids if i >= target), default=min(ids))
            assert result.node_id == expected

    def test_hop_count_bounded_by_log(self):
        rng = random.Random(4)
        ids = rng.sample(range(1 << 10), 64)
        transport, nodes = make_ring(ids)
        start = nodes[min(ids)]
        for target in range(0, 1024, 101):
            assert start.lookup(target).hops <= 12  # ~2 log2(64)

    def test_lookup_from_any_node_agrees(self):
        ids = [10, 200, 400, 600, 800, 1000]
        transport, nodes = make_ring(ids)
        for target in (0, 555, 1023):
            answers = {nodes[i].lookup(target).node_id for i in ids}
            assert len(answers) == 1

    def test_lookup_routes_around_dead_finger(self):
        ids = [10, 200, 400, 600, 800, 1000]
        transport, nodes = make_ring(ids)
        # Kill 600 without repair; a lookup for 590 from 10 must still
        # resolve (to 600's stale id or beyond) without raising.
        transport.deregister(600)
        result = nodes[10].lookup(990)
        assert result.node_id in ids

    def test_lookup_budget_exhaustion_raises(self):
        # A zero-hop budget forces failure whenever the answer is remote.
        ids = [10, 200, 400, 600, 800, 1000]
        transport, nodes = make_ring(ids)
        with pytest.raises(LookupError_):
            nodes[10].lookup(990, max_hops=0)

    def test_lookup_survives_stale_dead_pointers(self):
        # Successor and best finger both dead: the client must exclude the
        # casualties, fall back, and either resolve or raise cleanly.
        ids = [10, 200, 400, 600, 800, 1000]
        transport, nodes = make_ring(ids)
        transport.deregister(400)
        transport.deregister(600)
        result = nodes[10].lookup(590)
        assert result.node_id in ids


class TestStabilize:
    def test_two_node_bootstrap_closes_ring(self):
        transport = RpcTransport(rng=random.Random(0))
        a = ChordNode(100, 10, transport)
        b = ChordNode(600, 10, transport)
        transport.register(100, a)
        transport.register(600, b)
        b.join(100)
        for _ in range(3):
            a.stabilize()
            b.stabilize()
        assert a.get_successor() == 600
        assert b.get_successor() == 100
        assert a.predecessor == 600
        assert b.predecessor == 100

    def test_adopts_interposed_node(self):
        ids = [100, 600]
        transport, nodes = make_ring(ids)
        c = ChordNode(300, 10, transport)
        transport.register(300, c)
        c.join(100)
        for _ in range(3):
            for node in (nodes[100], nodes[600], c):
                node.check_predecessor()
                node.stabilize()
        assert nodes[100].get_successor() == 300
        assert c.get_successor() == 600
        assert nodes[600].predecessor == 300

    def test_successor_list_repair_after_crash(self):
        ids = [10, 200, 400, 600]
        transport, nodes = make_ring(ids)
        transport.deregister(200)
        nodes[10].stabilize()
        assert nodes[10].get_successor() == 400

    def test_check_predecessor_clears_dead(self):
        ids = [10, 200]
        transport, nodes = make_ring(ids)
        transport.deregister(10)
        nodes[200].check_predecessor()
        assert nodes[200].predecessor is None

    def test_sole_survivor_self_loops(self):
        ids = [10, 200]
        transport, nodes = make_ring(ids)
        transport.deregister(200)
        nodes[10].check_predecessor()
        nodes[10].stabilize()
        assert nodes[10].get_successor() == 10


class TestGracefulLeave:
    def test_splices_both_neighbours(self):
        ids = [10, 200, 400, 600]
        transport, nodes = make_ring(ids)
        nodes[200].leave_gracefully()
        transport.deregister(200)
        assert nodes[10].get_successor() == 400
        assert nodes[400].predecessor == 10

    def test_hands_over_successor_list(self):
        ids = [10, 200, 400, 600]
        transport, nodes = make_ring(ids)
        nodes[200].leave_gracefully()
        transport.deregister(200)
        assert 200 not in nodes[10].successors
        assert nodes[10].successors[0] == 400


class TestFingers:
    def test_fix_all_fingers_matches_oracle(self):
        ids = [10, 200, 400, 600, 800, 1000]
        transport, nodes = make_ring(ids)
        node = nodes[10]
        node.fingers = [None] * node.m
        node.fix_all_fingers()
        for f in range(node.m):
            target = (10 + (1 << f)) % (1 << 10)
            expected = min((i for i in ids if i >= target), default=min(ids))
            assert node.fingers[f] == expected

    def test_fix_next_finger_round_robins(self):
        ids = [10, 600]
        transport, nodes = make_ring(ids)
        node = nodes[10]
        node.fingers = [None] * node.m
        node.fix_next_finger()
        node.fix_next_finger()
        assert node.fingers[0] is not None
        assert node.fingers[1] is not None
        assert node.fingers[2] is None
