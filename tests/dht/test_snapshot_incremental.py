"""Property: incremental snapshot maintenance is bit-identical to rebuild.

The tentpole invariant of the struct-of-arrays substrate: any
interleaving of join / crash / leave / stabilize, with the snapshot
drained at arbitrary intermediate points, must leave the incrementally
patched :class:`RingSnapshot` in exactly the state a from-scratch
``RingSnapshot.build`` would produce -- same ids, same finger rows,
same successor lists, same liveness.  ``canonical_state()`` flattens
both to comparable tuples (decoding the numpy arrays when present, so
the comparison exercises the array maintenance, not the Python
mirrors).  The CI matrix runs this file under both
``REPRO_PURE_PYTHON`` lanes, so each backend is covered with and
without numpy.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dht.chord.batch import RingSnapshot
from repro.dht.chord.network import ChordNetwork
from repro.dht.chord.soa import SoAChordNetwork
from repro.dht.kademlia.routing import SoAKademliaNetwork

M = 12

# op codes drawn by the strategies; weights keep membership mostly stable
OPS = ("join", "crash", "leave", "stabilize", "snapshot")


@st.composite
def op_scripts(draw, min_ops=4, max_ops=24):
    n = draw(st.integers(min_value=4, max_value=24))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    ops = draw(
        st.lists(
            st.sampled_from(OPS),
            min_size=min_ops,
            max_size=max_ops,
        )
    )
    return n, seed, ops


def _run_script(net, ops, rng, *, min_live=3):
    """Apply an op script to any substrate exposing the churn verbs.

    Returns the number of intermediate ``snapshot()`` drains performed,
    so callers can assert the incremental path was actually exercised.
    """
    drains = 0
    for op in ops:
        live = net.sorted_ids()
        if op == "join":
            net.join_node()
        elif op == "crash" and len(live) > min_live:
            net.crash_node(rng.choice(live))
        elif op == "leave" and len(live) > min_live:
            net.leave_node(rng.choice(live))
        elif op == "stabilize":
            net.stabilize_round()
        elif op == "snapshot" and hasattr(net, "snapshot"):
            net.snapshot()
            drains += 1
    return drains


@settings(max_examples=20, deadline=None)
@given(op_scripts())
def test_chord_incremental_snapshot_matches_rebuild(case):
    n, seed, ops = case
    rng = random.Random(seed)
    net = ChordNetwork.build(n, m=M, rng=random.Random(seed + 1))
    net.snapshot()  # seed the cache so churn goes down the patch path
    _run_script(net, ops, rng)
    incremental = net.snapshot()
    rebuilt = RingSnapshot.build(net)
    assert incremental.canonical_state() == rebuilt.canonical_state()
    # Draining again without churn must be a no-op on the same object.
    again = net.snapshot()
    assert again is incremental
    assert again.canonical_state() == rebuilt.canonical_state()


@settings(max_examples=20, deadline=None)
@given(op_scripts())
def test_chord_mid_script_drains_stay_identical(case):
    """Snapshot drains at every step, not just at the end."""
    n, seed, ops = case
    rng = random.Random(seed)
    net = ChordNetwork.build(n, m=M, rng=random.Random(seed + 2))
    net.snapshot()
    for op in ops:
        _run_script(net, [op], rng)
        assert (
            net.snapshot().canonical_state()
            == RingSnapshot.build(net).canonical_state()
        )


@settings(max_examples=20, deadline=None)
@given(op_scripts())
def test_soa_chord_splice_matches_fresh_build(case):
    """SoA join/leave splices converge to the oracle-built store.

    Crashes deliberately leave stale rows (lookups route around them),
    so the script ends with one stabilize round -- the SoA analogue of
    letting the ring converge -- before demanding bit-identity with a
    from-scratch oracle build over the live membership.
    """
    n, seed, ops = case
    rng = random.Random(seed)
    net = SoAChordNetwork.build(n, m=M, rng=random.Random(seed + 3))
    _run_script(net, ops, rng)
    net.stabilize_round()
    live = net.sorted_ids()
    fresh = net._build_store(list(live))
    assert net.store.canonical_state() == fresh.canonical_state()
    assert net.ring_is_correct()


@settings(max_examples=20, deadline=None)
@given(op_scripts())
def test_soa_chord_churn_free_of_full_rebuilds(case):
    """Churn must be absorbed by patches; builds stay at the initial 1."""
    n, seed, ops = case
    rng = random.Random(seed)
    net = SoAChordNetwork.build(n, m=M, rng=random.Random(seed + 4))
    _run_script(net, ops, rng)
    assert net.snapshot_builds == 1


@settings(max_examples=20, deadline=None)
@given(op_scripts())
def test_soa_kademlia_arrays_match_fresh_membership(case):
    """basis/live arrays converge to the live membership after refresh."""
    n, seed, ops = case
    rng = random.Random(seed)
    net = SoAKademliaNetwork.build(n, m=M, k=6, rng=random.Random(seed + 5))
    _run_script(net, ops, rng)
    net.refresh_round()
    assert net.routing_is_correct()
    live = net.sorted_ids()
    assert live == sorted(live)
    assert len(set(live)) == len(live)


@pytest.mark.parametrize("build_n", [5, 17, 33])
def test_chord_join_leave_round_trip_is_exact(build_n):
    """Deterministic spot check: join k nodes, leave them, state returns."""
    net = ChordNetwork.build(build_n, m=M, rng=random.Random(99))
    net.rewire_perfectly()
    before = net.snapshot().canonical_state()
    joined = [net.join_node().node_id for _ in range(3)]
    net.rewire_perfectly()  # direct mutation path: forces a full rebuild
    assert net.snapshot().canonical_state() != before
    for node_id in joined:
        net.leave_node(node_id)
    net.rewire_perfectly()
    assert net.snapshot().canonical_state() == before
