"""Tests for Chord identifier-space arithmetic."""

from __future__ import annotations


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import clockwise_distance
from repro.dht.chord.idspace import (
    id_to_point,
    in_open_closed,
    in_open_open,
    point_to_target_id,
)

M = 10
SIZE = 1 << M
ids = st.integers(min_value=0, max_value=SIZE - 1)


class TestIdToPoint:
    def test_zero_maps_to_one(self):
        assert id_to_point(0, M) == 1.0

    def test_midpoint(self):
        assert id_to_point(SIZE // 2, M) == 0.5

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            id_to_point(SIZE, M)
        with pytest.raises(ValueError):
            id_to_point(-1, M)

    @given(ids)
    def test_always_on_circle(self, node_id):
        assert 0.0 < id_to_point(node_id, M) <= 1.0

    @given(ids, ids)
    def test_order_preserved(self, a, b):
        """Clockwise id distance equals clockwise point distance (scaled)."""
        pa, pb = id_to_point(a, M), id_to_point(b, M)
        id_dist = (b - a) % SIZE
        assert clockwise_distance(pa, pb) == pytest.approx(id_dist / SIZE)


class TestPointToTargetId:
    def test_rejects_out_of_circle(self):
        with pytest.raises(ValueError):
            point_to_target_id(0.0, M)
        with pytest.raises(ValueError):
            point_to_target_id(1.5, M)

    def test_one_maps_to_zero(self):
        assert point_to_target_id(1.0, M) == 0

    def test_exact_grid_point(self):
        assert point_to_target_id(0.5, M) == SIZE // 2

    @given(st.floats(min_value=1e-9, max_value=1.0, allow_nan=False))
    @settings(max_examples=300)
    def test_roundtrip_successor_semantics(self, x):
        """The target id's point is the clockwise-closest grid point to x."""
        target = point_to_target_id(x, M)
        point = id_to_point(target, M)
        d = clockwise_distance(x, point)
        assert d < 1.0 / SIZE  # within one grid cell

    @given(ids)
    def test_node_point_maps_to_itself(self, node_id):
        assert point_to_target_id(id_to_point(node_id, M), M) == node_id


class TestIntervals:
    def test_open_closed_simple(self):
        assert in_open_closed(5, 3, 8)
        assert in_open_closed(8, 3, 8)
        assert not in_open_closed(3, 3, 8)
        assert not in_open_closed(9, 3, 8)

    def test_open_closed_wrapping(self):
        assert in_open_closed(1, 900, 10)
        assert in_open_closed(950, 900, 10)
        assert not in_open_closed(500, 900, 10)

    def test_open_closed_degenerate_is_full_ring(self):
        assert in_open_closed(123, 7, 7)
        assert in_open_closed(7, 7, 7)

    def test_open_open_simple(self):
        assert in_open_open(5, 3, 8)
        assert not in_open_open(8, 3, 8)
        assert not in_open_open(3, 3, 8)

    def test_open_open_wrapping(self):
        assert in_open_open(950, 900, 10)
        assert in_open_open(5, 900, 10)
        assert not in_open_open(10, 900, 10)

    def test_open_open_degenerate_excludes_only_endpoint(self):
        assert in_open_open(8, 7, 7)
        assert not in_open_open(7, 7, 7)

    @given(ids, ids, ids)
    def test_open_closed_matches_modular_arithmetic(self, x, a, b):
        if a == b:
            assert in_open_closed(x, a, b)
        else:
            expected = (x - a) % SIZE <= (b - a) % SIZE and x != a
            assert in_open_closed(x, a, b) == expected

    @given(ids, ids, ids)
    def test_open_open_is_open_closed_minus_endpoint(self, x, a, b):
        if a == b:
            assert in_open_open(x, a, b) == (x != a)
        else:
            assert in_open_open(x, a, b) == (in_open_closed(x, a, b) and x != b)
