"""Tests for the closed-form spacing/cost theory against simulation."""

from __future__ import annotations

import math
import random

import pytest

from repro import IdealDHT, RandomPeerSampler, SortedCircle
from repro.analysis.theory import (
    expected_max_arc,
    expected_messages_per_sample,
    expected_min_arc,
    expected_naive_bias,
    expected_trials,
    harmonic,
)
from repro.core.sampler import SamplerParams


class TestHarmonic:
    def test_small_values(self):
        assert harmonic(1) == 1.0
        assert harmonic(2) == 1.5
        assert harmonic(4) == pytest.approx(25.0 / 12.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            harmonic(0)

    def test_asymptotic_branch_continuous(self):
        """The exact sum and the expansion agree where they hand over."""
        exact = math.fsum(1.0 / k for k in range(1, 20_001))
        assert harmonic(20_000) == pytest.approx(exact, rel=1e-10)

    def test_grows_like_log(self):
        assert harmonic(100_000) == pytest.approx(math.log(100_000) + 0.5772, abs=0.01)


class TestSpacingMoments:
    """E[min]=1/n^2 and E[max]=H_n/n are *exact*; simulation must agree."""

    @pytest.mark.parametrize("n", [64, 256])
    def test_min_arc_mean_matches_exact_formula(self, n):
        rng = random.Random(n)
        rings = 400
        mean_min = (
            sum(min(SortedCircle.random(n, rng).arcs()) for _ in range(rings)) / rings
        )
        assert mean_min == pytest.approx(expected_min_arc(n), rel=0.2)

    @pytest.mark.parametrize("n", [64, 256])
    def test_max_arc_mean_matches_exact_formula(self, n):
        rng = random.Random(n + 1)
        rings = 400
        mean_max = (
            sum(max(SortedCircle.random(n, rng).arcs()) for _ in range(rings)) / rings
        )
        assert mean_max == pytest.approx(expected_max_arc(n), rel=0.1)

    def test_naive_bias_scale(self):
        assert expected_naive_bias(1000) == pytest.approx(1000 * harmonic(1000))

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_min_arc(0)
        with pytest.raises(ValueError):
            expected_max_arc(0)


class TestCostFormulas:
    def test_expected_trials_closed_form(self):
        params = SamplerParams.from_estimate(1000.0)
        # 1/(n * lam) with n = n_hat: 7 * n'/n = 7/gamma1.
        assert expected_trials(1000, params) == pytest.approx(7.0 / (2.0 / 7.0))

    def test_expected_trials_matches_simulation(self):
        n = 512
        dht = IdealDHT.random(n, random.Random(3))
        sampler = RandomPeerSampler(dht, n_hat=float(n), rng=random.Random(4))
        predicted = expected_trials(n, sampler.params)
        observed = sum(
            sampler.sample_with_stats().trials for _ in range(400)
        ) / 400
        assert observed == pytest.approx(predicted, rel=0.2)

    def test_expected_messages_upper_estimates_simulation(self):
        n = 512
        dht = IdealDHT.random(n, random.Random(5))
        sampler = RandomPeerSampler(dht, n_hat=float(n), rng=random.Random(6))
        predicted = expected_messages_per_sample(n, sampler.params)
        observed = sum(
            sampler.sample_with_stats().cost.messages for _ in range(300)
        ) / 300
        assert observed <= 1.2 * predicted
        assert observed >= 0.2 * predicted  # same order, not wildly loose

    def test_validation(self):
        params = SamplerParams.from_estimate(10.0)
        with pytest.raises(ValueError):
            expected_trials(0, params)
