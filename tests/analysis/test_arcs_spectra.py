"""Tests for arc-sweep analytics and spectral utilities."""

from __future__ import annotations

import math

import networkx as nx
import pytest

from repro.analysis.arcs import sweep_arc_extremes
from repro.analysis.spectra import mixing_time_bound, spectral_report


class TestArcSweep:
    def test_row_structure(self, rng):
        rows = sweep_arc_extremes([64, 128], rings_per_size=3, rng=rng)
        assert [r.n for r in rows] == [64, 128]
        assert all(r.rings == 3 for r in rows)

    def test_normalized_ratios_are_order_one(self, rng):
        rows = sweep_arc_extremes([256, 1024], rings_per_size=8, rng=rng)
        for row in rows:
            assert 0.05 < row.mean_shortest_ratio < 20.0
            assert 0.3 < row.mean_longest_ratio < 3.0

    def test_raw_extremes_shrink_with_n(self, rng):
        rows = sweep_arc_extremes([128, 2048], rings_per_size=8, rng=rng)
        assert rows[1].mean_shortest < rows[0].mean_shortest
        assert rows[1].mean_longest < rows[0].mean_longest

    def test_bias_scale_is_bounded(self, rng):
        rows = sweep_arc_extremes([512], rings_per_size=10, rng=rng)
        # bias / (n ln n) should be O(1) -- generous band for the heavy tail.
        assert 0.01 < rows[0].bias_scale < 100.0


class TestSpectra:
    def test_complete_graph_has_big_gap(self):
        report = spectral_report(nx.complete_graph(20), "simple")
        assert report.spectral_gap > 0.9

    def test_cycle_has_small_gap(self):
        report = spectral_report(nx.cycle_graph(60), "simple")
        assert report.spectral_gap < 0.1

    def test_gap_in_unit_interval(self):
        g = nx.random_regular_graph(4, 50, seed=3)
        report = spectral_report(g, "metropolis")
        assert 0.0 <= report.spectral_gap <= 1.0

    def test_relaxation_time_inverse_gap(self):
        report = spectral_report(nx.complete_graph(10), "simple")
        assert report.relaxation_time == pytest.approx(1.0 / report.spectral_gap)

    def test_mixing_time_bound_formula(self):
        report = spectral_report(nx.complete_graph(16), "simple")
        bound = mixing_time_bound(report, epsilon=0.01)
        assert bound == pytest.approx(math.log(16 / 0.01) / report.spectral_gap)

    def test_mixing_bound_predicts_observed_mixing(self):
        """The spectral bound must upper-bound observed TV mixing."""
        from repro.analysis.stats import total_variation_from_uniform
        from repro.baselines.random_walk import walk_distribution

        g = nx.cycle_graph(30)
        for i in range(0, 30, 3):
            g.add_edge(i, (i + 11) % 30)
        report = spectral_report(g, "metropolis")
        bound = mixing_time_bound(report, epsilon=0.05)
        dist = walk_distribution(g, "metropolis", math.ceil(bound), start=0)
        assert total_variation_from_uniform(dist) <= 0.05
