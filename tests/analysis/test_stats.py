"""Tests for the statistics toolkit."""

from __future__ import annotations

import math

import pytest

from repro.analysis.stats import (
    chi_square_uniform,
    empirical_distribution,
    kl_divergence,
    max_min_ratio,
    mean_confidence_interval,
    total_variation,
    total_variation_from_uniform,
    wilson_interval,
)


class TestEmpiricalDistribution:
    def test_basic_frequencies(self):
        dist = empirical_distribution(["a", "a", "b"], support=["a", "b", "c"])
        assert dist == {"a": 2 / 3, "b": 1 / 3, "c": 0.0}

    def test_rejects_out_of_support(self):
        with pytest.raises(ValueError):
            empirical_distribution(["z"], support=["a"])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            empirical_distribution([], support=["a"])


class TestTotalVariation:
    def test_identical_is_zero(self):
        p = {"a": 0.5, "b": 0.5}
        assert total_variation(p, p) == 0.0

    def test_disjoint_is_one(self):
        assert total_variation({"a": 1.0}, {"b": 1.0}) == 1.0

    def test_known_value(self):
        p = {"a": 0.75, "b": 0.25}
        q = {"a": 0.25, "b": 0.75}
        assert total_variation(p, q) == pytest.approx(0.5)

    def test_from_uniform(self):
        p = {"a": 1.0, "b": 0.0}
        assert total_variation_from_uniform(p) == pytest.approx(0.5)

    def test_from_uniform_of_uniform_is_zero(self):
        p = {i: 0.25 for i in range(4)}
        assert total_variation_from_uniform(p) == 0.0

    def test_from_uniform_rejects_empty(self):
        with pytest.raises(ValueError):
            total_variation_from_uniform({})


class TestKL:
    def test_identical_is_zero(self):
        p = {"a": 0.3, "b": 0.7}
        assert kl_divergence(p, p) == pytest.approx(0.0)

    def test_infinite_when_support_mismatch(self):
        assert kl_divergence({"a": 1.0}, {"b": 1.0}) == math.inf

    def test_known_value(self):
        p = {"a": 1.0}
        q = {"a": 0.5, "b": 0.5}
        assert kl_divergence(p, q) == pytest.approx(math.log(2))

    def test_nonnegative(self):
        p = {"a": 0.9, "b": 0.1}
        q = {"a": 0.5, "b": 0.5}
        assert kl_divergence(p, q) >= 0.0


class TestChiSquare:
    def test_uniform_counts_not_rejected(self):
        result = chi_square_uniform([100, 101, 99, 100])
        assert result.p_value > 0.9
        assert not result.rejects_uniformity()

    def test_skewed_counts_rejected(self):
        result = chi_square_uniform([1000, 10, 10, 10])
        assert result.rejects_uniformity(alpha=1e-6)

    def test_dof(self):
        assert chi_square_uniform([5, 5, 5]).dof == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            chi_square_uniform([5])
        with pytest.raises(ValueError):
            chi_square_uniform([5, -1])
        with pytest.raises(ValueError):
            chi_square_uniform([0, 0])


class TestMaxMinRatio:
    def test_uniform_is_one(self):
        assert max_min_ratio([0.25] * 4) == 1.0

    def test_known_ratio(self):
        assert max_min_ratio([0.1, 0.4]) == pytest.approx(4.0)

    def test_zero_floor_is_infinite(self):
        assert max_min_ratio([0.0, 1.0]) == math.inf


class TestIntervals:
    def test_wilson_contains_proportion(self):
        low, high = wilson_interval(50, 100)
        assert low < 0.5 < high
        assert 0.0 <= low <= high <= 1.0

    def test_wilson_narrows_with_samples(self):
        w_small = wilson_interval(5, 10)
        w_large = wilson_interval(500, 1000)
        assert (w_large[1] - w_large[0]) < (w_small[1] - w_small[0])

    def test_wilson_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 0)
        with pytest.raises(ValueError):
            wilson_interval(11, 10)

    def test_wilson_extremes_stay_in_unit(self):
        low, high = wilson_interval(0, 20)
        assert low == 0.0
        low, high = wilson_interval(20, 20)
        assert high == 1.0

    def test_mean_ci_contains_mean(self):
        mean, low, high = mean_confidence_interval([1.0, 2.0, 3.0, 4.0])
        assert mean == 2.5
        assert low < mean < high

    def test_mean_ci_degenerate_constant(self):
        mean, low, high = mean_confidence_interval([2.0, 2.0, 2.0])
        assert mean == low == high == 2.0

    def test_mean_ci_needs_two(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([1.0])

    def test_mean_ci_coverage_monte_carlo(self):
        import random

        rng = random.Random(9)
        covered = 0
        for _ in range(200):
            data = [rng.gauss(10.0, 2.0) for _ in range(30)]
            _, low, high = mean_confidence_interval(data, confidence=0.95)
            if low <= 10.0 <= high:
                covered += 1
        assert covered >= 180  # ~95% nominal coverage
